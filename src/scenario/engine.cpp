#include "scenario/engine.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <stdexcept>
#include <utility>

#include "dl/model.hpp"
#include "metrics/util_sampler.hpp"
#include "obs/metrics_registry.hpp"
#include "scenario/export.hpp"
#include "simcore/simulator.hpp"
#include "tc/tc.hpp"
#include "tensorlights/controller.hpp"

namespace tls::scenario {

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kEvicted: return "evicted";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kUnfinished: return "unfinished";
  }
  return "?";
}

namespace {

int effective_band_limit(const Config& config) {
  // -1 follows the controller's band budget so "one PS job per distinct
  // band" is the out-of-the-box exhaustion point; the limit applies under
  // FIFO too, so admission behaviour is identical across the policies
  // being compared.
  if (config.ps_band_limit < 0) return config.controller.max_bands;
  return config.ps_band_limit;
}

net::FabricConfig fabric_config(const Config& config) {
  net::FabricConfig fc = config.fabric;
  fc.num_hosts = config.num_hosts;
  return fc;
}

/// One scenario simulation: owns the whole component stack and the
/// churn bookkeeping (pending queue, per-job outcomes, peaks).
class Engine {
 public:
  explicit Engine(const Config& config)
      : config_(config),
        trace_(config.replay.jobs.empty() ? generate_trace(config.trace)
                                          : config.replay),
        sim_(config.seed),
        fabric_(sim_, fabric_config(config)),
        control_(fabric_),
        controller_(sim_, control_, config.controller),
        scheduler_(config.num_hosts, config.scheduler, config.admission,
                   effective_band_limit(config)),
        busy_(config.num_hosts),
        launcher_(sim_, fabric_) {
    if (config.num_hosts < 2) throw std::invalid_argument("num_hosts < 2");
    if (config.cores_per_host < 1) {
      throw std::invalid_argument("cores_per_host < 1");
    }
    for (const TraceJob& job : trace_.jobs) {
      if (!dl::zoo::by_name(job.model)) {
        throw std::invalid_argument("unknown model in trace: " + job.model);
      }
    }
    launcher_.add_listener(&controller_);
    launcher_.set_busy_sink(
        [this](net::HostId h, sim::Time b, sim::Time e) { busy_.add(h, b, e); });
  }

  Result run() {
    outcomes_.resize(trace_.jobs.size());
    for (std::size_t i = 0; i < trace_.jobs.size(); ++i) {
      const TraceJob& tj = trace_.jobs[i];
      JobOutcome& o = outcomes_[i];
      o.job_id = tj.job_id;
      o.model = tj.model;
      o.num_workers = clamped_workers(tj);
      o.iterations_target = tj.iterations;
      o.arrival_s = sim::to_seconds(tj.arrival);
      sim_.schedule_at(tj.arrival, [this, i] { on_arrival(i); });
    }

    std::unique_ptr<sim::PeriodicTimer> sampler;
    if (config_.sample_period > sim::Time{0}) {
      sampler = std::make_unique<sim::PeriodicTimer>(
          sim_, config_.sample_period, [this] { sample(); });
      sampler->start();
    }

    // The sampler and the TLs-RR rotation timer re-arm forever, so the
    // event queue never drains on its own; run in slices until every
    // trace entry is resolved or the horizon is hit.
    const sim::Time slice = 1 * sim::kSecond;
    while (resolved_ < trace_.jobs.size() && sim_.now() < config_.time_limit &&
           !sim_.idle()) {
      sim::Time until = sim_.now() + slice;
      if (until > config_.time_limit) until = config_.time_limit;
      sim_.run(until);
    }
    if (sampler) sampler->stop();
    return finalize();
  }

 private:
  int clamped_workers(const TraceJob& tj) const {
    // A trace is cluster-agnostic; a job asking for more workers than the
    // cluster has hosts is scaled down to one worker per non-PS host.
    return std::max(1, std::min(tj.num_workers, config_.num_hosts - 1));
  }

  dl::JobSpec spec_for(const TraceJob& tj) const {
    dl::JobSpec spec;
    spec.job_id = tj.job_id;
    spec.model = *dl::zoo::by_name(tj.model);
    spec.num_workers = clamped_workers(tj);
    spec.local_batch_size = tj.local_batch_size;
    spec.global_step_target = tj.iterations * spec.num_workers;
    return spec;
  }

  void on_arrival(std::size_t index) {
    dl::JobSpec spec = spec_for(trace_.jobs[index]);
    cluster::Admission admission = scheduler_.try_place(spec);
    peak_coloc_ = std::max(peak_coloc_, admission.ps_colocation);
    switch (admission.outcome) {
      case cluster::AdmissionOutcome::kPlaced:
        counter("scenario_admitted").add(1);
        start_job(index, std::move(spec), std::move(admission.placement));
        break;
      case cluster::AdmissionOutcome::kQueued:
        counter("scenario_queued").add(1);
        pending_.push_back(index);
        break;
      case cluster::AdmissionOutcome::kRejected: {
        counter("scenario_rejected").add(1);
        JobOutcome& o = outcomes_[index];
        o.status = JobStatus::kRejected;
        o.finish_s = sim::to_seconds(sim_.now());
        ++resolved_;
        break;
      }
    }
  }

  void start_job(std::size_t index, dl::JobSpec spec,
                 dl::JobPlacement placement) {
    const TraceJob& tj = trace_.jobs[index];
    JobOutcome& o = outcomes_[index];
    dl::JobRuntime& job = launcher_.admit(
        std::move(spec), std::move(placement), config_.launch,
        [this, index](const dl::JobRuntime& j) { on_departure(index, j); });
    o.admit_s = sim::to_seconds(sim_.now());
    o.queue_wait_s = o.admit_s - o.arrival_s;
    o.band_at_admit = controller_.band_of(o.job_id);
    registry_.histogram("scenario_queue_wait_ns", -1, -1, -1)
        .record(sim::to_nanos(sim_.now() - tj.arrival));
    ++active_;
    peak_active_ = std::max(peak_active_, active_);
    if (tj.lifetime > sim::Time{0}) {
      sim_.schedule_after(tj.lifetime, [this, job_ptr = &job] {
        if (!job_ptr->finished()) launcher_.evict(*job_ptr);
      });
    }
  }

  void on_departure(std::size_t index, const dl::JobRuntime& job) {
    JobOutcome& o = outcomes_[index];
    o.finish_s = sim::to_seconds(sim_.now());
    o.jct_s = sim::to_seconds(job.jct());
    o.iterations_done = job.iteration();
    o.status = job.evicted() ? JobStatus::kEvicted : JobStatus::kCompleted;
    counter(job.evicted() ? "scenario_evicted" : "scenario_completed").add(1);
    if (!job.evicted()) {
      registry_.histogram("scenario_jct_ns", -1, -1, -1)
          .record(sim::to_nanos(job.jct()));
    }
    scheduler_.remove(job.spec(), job.placement());
    --active_;
    ++resolved_;
    drain_pending();
  }

  /// FIFO retry of jobs the admission policy held back; a departure may
  /// free several band slots at once, so keep admitting until the head
  /// of the queue no longer fits.
  void drain_pending() {
    while (!pending_.empty()) {
      std::size_t index = pending_.front();
      dl::JobSpec spec = spec_for(trace_.jobs[index]);
      cluster::Admission admission = scheduler_.try_place(spec);
      if (admission.outcome != cluster::AdmissionOutcome::kPlaced) break;
      pending_.pop_front();
      peak_coloc_ = std::max(peak_coloc_, admission.ps_colocation);
      start_job(index, std::move(spec), std::move(admission.placement));
    }
  }

  void sample() {
    sim::Time now = sim_.now();
    registry_.record(now, "scenario_active_jobs", -1, -1, -1,
                     static_cast<double>(active_));
    registry_.record(now, "scenario_pending_jobs", -1, -1, -1,
                     static_cast<double>(pending_.size()));
    for (net::HostId h{0}; h < net::HostId{config_.num_hosts}; ++h) {
      registry_.record(now, "scenario_ps_jobs", h.idx(), -1, -1,
                       static_cast<double>(scheduler_.ps_count(h)));
      registry_.record(now, "scenario_band_jobs", h.idx(), -1, -1,
                       static_cast<double>(controller_.managed_job_count(h)));
    }
  }

  obs::Counter& counter(const char* name) {
    return registry_.counter(name, -1, -1, -1);
  }

  Result finalize() {
    Result result;
    result.policy_name = core::to_string(config_.controller.policy);
    result.admission_name = cluster::to_string(config_.admission);
    result.seed = config_.seed;
    result.trace_seed = config_.replay.jobs.empty() ? config_.trace.seed : 0;
    result.num_hosts = config_.num_hosts;
    result.peak_active_jobs = peak_active_;
    result.peak_ps_colocation = peak_coloc_;
    result.rotations = controller_.rotations();
    result.tc_commands = control_.history().size();
    result.sim_events = sim_.dispatched();
    result.horizon_s = sim::to_seconds(sim_.now());
    result.trace_drained = resolved_ == trace_.jobs.size();

    std::vector<double> jcts;
    std::vector<double> waits;
    for (JobOutcome& o : outcomes_) {
      switch (o.status) {
        case JobStatus::kCompleted:
          ++result.completed;
          jcts.push_back(o.jct_s);
          break;
        case JobStatus::kEvicted: ++result.evicted; break;
        case JobStatus::kRejected: ++result.rejected; break;
        case JobStatus::kUnfinished: ++result.unfinished; break;
      }
      if (o.admit_s >= 0) waits.push_back(o.queue_wait_s);
    }
    result.jct = metrics::summarize(jcts);
    result.queue_wait = metrics::summarize(waits);

    double cpu = 0;
    for (net::HostId h{0}; h < net::HostId{config_.num_hosts}; ++h) {
      cpu += busy_.cpu_utilization(h, sim::Time{0}, sim_.now(),
                                   config_.cores_per_host);
    }
    result.cluster_cpu_util = cpu / config_.num_hosts;

    registry_.gauge("scenario_peak_active_jobs", -1, -1, -1)
        .set(peak_active_);
    registry_.gauge("scenario_peak_ps_colocation", -1, -1, -1)
        .set(peak_coloc_);
    registry_.gauge("scenario_cluster_cpu_util", -1, -1, -1)
        .set(result.cluster_cpu_util);
    if (!config_.metrics_path.empty()) {
      std::string error;
      if (!write_file(config_.metrics_path,
                      registry_.timeseries_csv(sim_.now()), &error)) {
        throw std::runtime_error("scenario metrics export failed: " + error);
      }
    }
    result.jobs = std::move(outcomes_);
    return result;
  }

  const Config& config_;
  Trace trace_;
  sim::Simulator sim_;
  obs::Registry registry_;
  net::Fabric fabric_;
  tc::TrafficControl control_;
  core::Controller controller_;
  cluster::OnlineScheduler scheduler_;
  metrics::BusyAccumulator busy_;
  cluster::Launcher launcher_;
  std::deque<std::size_t> pending_;
  std::vector<JobOutcome> outcomes_;
  int active_ = 0;
  int peak_active_ = 0;
  int peak_coloc_ = 0;
  std::size_t resolved_ = 0;
};

}  // namespace

Result run_scenario(const Config& config) {
  Engine engine(config);
  return engine.run();
}

}  // namespace tls::scenario
