#include "runtime/cli.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "exp/experiment.hpp"
#include "exp/export.hpp"
#include "metrics/report.hpp"
#include "obs/trace.hpp"
#include "runtime/runner.hpp"
#include "runtime/scenario_runner.hpp"
#include "scenario/export.hpp"

namespace tls::runtime {

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  std::string value = fallback;
  for (const auto& [k, v] : flags) {
    if (k == key) value = v;
  }
  return value;
}

bool CliArgs::has(const std::string& key) const {
  for (const auto& [k, v] : flags) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

bool parse_args(const std::vector<std::string>& raw, CliArgs* out,
                std::string* error) {
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& a = raw[i];
    if (a.rfind("--", 0) != 0) {
      out->positional.push_back(a);
      continue;
    }
    std::string key = a.substr(2);
    if (key.empty()) {
      *error = "empty flag name";
      return false;
    }
    auto eq = key.find('=');
    if (eq != std::string::npos) {
      out->flags.emplace_back(key.substr(0, eq), key.substr(eq + 1));
      continue;
    }
    // "--key value" when the next token is not itself a flag; otherwise a
    // boolean switch.
    if (i + 1 < raw.size() && raw[i + 1].rfind("--", 0) != 0) {
      out->flags.emplace_back(key, raw[i + 1]);
      ++i;
    } else {
      out->flags.emplace_back(key, "true");
    }
  }
  return true;
}

namespace {

constexpr const char* kUsage = R"(tlsim - TensorLights cluster simulator

usage: tlsim <command> [flags]

commands:
  run              one experiment, full report
  compare          FIFO vs TLs-One vs TLs-RR on one configuration
  sweep-placement  Table I placements under every policy
  sweep-batch      local batch sizes {1,2,4,8,16} under every policy
  scenario         trace-driven dynamic cluster: jobs arrive/depart over
                   hours of simulated time (see scenario flags below)
  help             this text

flags (defaults = the paper's testbed):
  --hosts N (21) --jobs N (21) --workers N (20) --ps N (1)
  --batch N (4) --iters N (60) --placement IDX (1) --seed N (1)
  --policy fifo|tls-one|tls-rr (tls-rr)
  --strategy arrival|random|smallest (arrival)
  --bands N (6) --interval-s X (10) --link-gbps X (10)
  --replicas N (1) --background --csv --export-prefix PATH

execution flags (host-side; results are byte-identical at any thread count):
  --threads N      worker threads for independent runs
                   (0 = $TLS_JOBS or hardware concurrency; 1 = serial)
  --cache DIR      content-addressed result cache (default: $TLS_CACHE_DIR;
                   unset = off) --no-cache forces it off
  --progress       per-run progress/ETA lines on stderr

observability flags (artifacts never change results; multi-run commands
derive per-run paths, e.g. trace.json -> trace.run-label.json):
  --trace PATH         Chrome trace-event JSON (Perfetto/chrome://tracing)
  --trace-csv PATH     same events in compact CSV form
  --trace-filter CATS  comma list of chunk,qdisc,htb,rotation,barrier,
                       straggler,sample,flow,ingress,compute; or
                       all (default) / none
  --trace-sample SPEC  capture sampling, comma list of cat=N keeping one
                       event in N (e.g. qdisc=16,htb=8); attribution
                       categories are always kept exact
  --metrics PATH       long-format metrics timeseries CSV
  --report PATH        straggler-attribution report (critical-path
                       decomposition + contention blame; tlsreport text)
  --report-csv PATH    same report as tidy long CSV
  --report-json PATH   same report as tlsreport-v2 JSON
  --report-html PATH   same report as a self-contained HTML dashboard

scenario flags (shared flags that apply: --hosts (12 here), --policy,
--strategy, --bands, --interval-s (20 here), --link-gbps, --seed,
--threads, --csv):
  --scenario-jobs N (100)        trace length
  --scenario-arrivals poisson|pareto (poisson)
  --scenario-mean-s X (30)       Poisson mean interarrival
  --scenario-pareto-alpha X (1.5) --scenario-pareto-min-s X (2)
  --scenario-pareto-max-s X (600) bounded-Pareto interarrival shape/bounds
  --scenario-models LIST         comma list of zoo models, or mix = all
                                 (default resnet32_cifar10)
  --scenario-workers-min N (2) --scenario-workers-max N (8)
  --scenario-iters-min N (20) --scenario-iters-max N (80)
  --scenario-batch N (4)         local batch size
  --scenario-evict-frac X (0)    fraction of jobs evicted mid-flight
  --scenario-evict-min-s X (30) --scenario-evict-max-s X (300)
  --scenario-trace-seed N (1)    workload seed (fixed across --policy)
  --scenario-admission share|queue|reject (share)
  --scenario-band-limit N (-1)   PS jobs/host before admission kicks in
                                 (-1 = follow --bands, 0 = unlimited)
  --scenario-time-limit-s X (14400) --scenario-sample-s X (10)
  --scenario-compare             FIFO vs TLs-One vs TLs-RR, same trace
  --scenario-trace PATH          replay a trace CSV instead of generating
  --scenario-trace-out PATH      write the trace CSV actually used
  --scenario-out PATH            scenario-v1 JSON result
  --scenario-csv PATH            per-job outcome CSV
)";

bool parse_policy(const std::string& s, core::PolicyKind* out) {
  if (s == "fifo") *out = core::PolicyKind::kFifo;
  else if (s == "tls-one") *out = core::PolicyKind::kTlsOne;
  else if (s == "tls-rr") *out = core::PolicyKind::kTlsRR;
  else return false;
  return true;
}

bool parse_strategy(const std::string& s, core::AssignStrategy* out) {
  if (s == "arrival") *out = core::AssignStrategy::kArrivalOrder;
  else if (s == "random") *out = core::AssignStrategy::kRandom;
  else if (s == "smallest") *out = core::AssignStrategy::kSmallestModelFirst;
  else return false;
  return true;
}

/// Builds the experiment configuration from flags; returns false with a
/// message on any invalid value.
bool build_config(const CliArgs& args, exp::ExperimentConfig* config,
                  std::string* error) {
  auto to_long = [&](const std::string& key, long fallback, long lo, long hi,
                     long* out) {
    std::string v = args.get(key);
    if (v.empty()) {
      *out = fallback;
      return true;
    }
    char* end = nullptr;
    long parsed = std::strtol(v.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || parsed < lo || parsed > hi) {
      *error = "bad value for --" + key + ": '" + v + "'";
      return false;
    }
    *out = parsed;
    return true;
  };
  auto to_double = [&](const std::string& key, double fallback, double* out) {
    std::string v = args.get(key);
    if (v.empty()) {
      *out = fallback;
      return true;
    }
    char* end = nullptr;
    double parsed = std::strtod(v.c_str(), &end);
    if (end == nullptr || *end != '\0' || parsed <= 0) {
      *error = "bad value for --" + key + ": '" + v + "'";
      return false;
    }
    *out = parsed;
    return true;
  };

  long hosts, jobs, workers, ps, batch, iters, placement, seed, bands;
  double interval_s, link_gbps;
  if (!to_long("hosts", 21, 2, 4096, &hosts)) return false;
  if (!to_long("jobs", 21, 1, 4096, &jobs)) return false;
  if (!to_long("workers", 20, 1, 4095, &workers)) return false;
  if (!to_long("ps", 1, 1, 64, &ps)) return false;
  if (!to_long("batch", 4, 1, 65536, &batch)) return false;
  if (!to_long("iters", 60, 1, 1000000, &iters)) return false;
  if (!to_long("placement", 1, 1, 8, &placement)) return false;
  if (!to_long("seed", 1, 0, INT64_MAX / 2, &seed)) return false;
  if (!to_long("bands", 6, 1, 15, &bands)) return false;
  if (!to_double("interval-s", 10.0, &interval_s)) return false;
  if (!to_double("link-gbps", 10.0, &link_gbps)) return false;

  config->num_hosts = static_cast<int>(hosts);
  config->workload.num_jobs = static_cast<int>(jobs);
  config->workload.workers_per_job = static_cast<int>(workers);
  config->workload.ps_per_job = static_cast<int>(ps);
  config->workload.local_batch_size = static_cast<int>(batch);
  config->workload.global_step_target = workers * iters;
  config->placement =
      cluster::table1(static_cast<int>(placement), static_cast<int>(jobs));
  config->seed = static_cast<std::uint64_t>(seed);
  config->fabric.link_rate = net::gbps(link_gbps);
  config->controller.max_bands = static_cast<int>(bands);
  config->controller.rotation_interval = sim::from_seconds(interval_s);
  config->background = args.has("background");

  if (workers > hosts - 1) {
    *error = "--workers must be <= --hosts - 1";
    return false;
  }
  if (!parse_policy(args.get("policy", "tls-rr"), &config->controller.policy)) {
    *error = "bad --policy (fifo|tls-one|tls-rr)";
    return false;
  }
  if (!parse_strategy(args.get("strategy", "arrival"),
                      &config->controller.strategy)) {
    *error = "bad --strategy (arrival|random|smallest)";
    return false;
  }
  // The prio data plane allows more bands than htb's 8 priority levels.
  if (config->controller.max_bands > 8) {
    config->controller.data_plane = core::DataPlane::kPrio;
  }

  config->obs.trace_path = args.get("trace");
  config->obs.trace_csv_path = args.get("trace-csv");
  config->obs.metrics_path = args.get("metrics");
  config->obs.report_path = args.get("report");
  config->obs.report_csv_path = args.get("report-csv");
  config->obs.report_json_path = args.get("report-json");
  config->obs.report_html_path = args.get("report-html");
  std::string filter = args.get("trace-filter");
  if (!filter.empty() &&
      !obs::parse_categories(filter, &config->obs.trace_categories, error)) {
    return false;
  }
  std::string sample = args.get("trace-sample");
  if (!sample.empty()) {
    // Validate the spec here so a typo fails at flag parse, not mid-run;
    // the parsed rates are re-derived inside run_experiment.
    std::uint32_t every[obs::kNumCats];
    for (int i = 0; i < obs::kNumCats; ++i) every[i] = 1;
    if (!obs::parse_sampling(sample, every, error)) return false;
    config->obs.trace_sample = sample;
  }
  return true;
}

/// Host-execution options (threads / cache / progress) from flags; false
/// with a message on a malformed value.
bool build_run_options(const CliArgs& args, RunOptions* options,
                       std::string* error) {
  std::string threads = args.get("threads", "0");
  char* end = nullptr;
  long parsed = std::strtol(threads.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || parsed < 0 || parsed > 4096) {
    *error = "bad value for --threads: '" + threads + "'";
    return false;
  }
  options->jobs = static_cast<int>(parsed);
  if (args.has("cache")) options->cache_dir = args.get("cache");
  if (args.has("no-cache")) options->cache_dir.clear();
  options->progress = args.has("progress");
  return true;
}

void emit(const metrics::Table& table, bool csv, std::ostream& out) {
  out << (csv ? table.csv() : table.str()) << "\n";
}

void add_result_row(metrics::Table* table, const exp::ExperimentResult& r,
                    double norm) {
  table->add_row({r.policy_name, metrics::fmt(r.avg_jct_s),
                  metrics::fmt(r.min_jct_s), metrics::fmt(r.max_jct_s),
                  metrics::fmt(norm, 3),
                  metrics::fmt(r.barrier_mean_summary.mean * 1e3, 1),
                  metrics::fmt(r.barrier_variance_summary.mean * 1e6, 0),
                  std::to_string(r.tc_commands)});
}

int cmd_run(const CliArgs& args, const exp::ExperimentConfig& config,
            const RunOptions& options, std::ostream& out,
            std::ostream& err) {
  long replicas = std::strtol(args.get("replicas", "1").c_str(), nullptr, 10);
  if (replicas < 1) replicas = 1;
  RunReport report = run_plan(
      RunPlan::replicated(config, static_cast<int>(replicas)),
      options);
  std::vector<exp::ExperimentResult>& runs = report.results;
  metrics::Table table({"policy", "avg JCT (s)", "min", "max", "norm",
                        "barrier wait (ms)", "wait var (ms^2)", "tc cmds"});
  for (const auto& r : runs) add_result_row(&table, r, 1.0);
  emit(table, args.has("csv"), out);
  if (replicas > 1) {
    metrics::Summary s = exp::jct_across(runs);
    out << "avg JCT across " << replicas << " seeds: " << metrics::fmt(s.mean)
        << " +/- " << metrics::fmt(s.stddev) << " s\n";
  }
  // --export-prefix PATH writes PATH.jobs.csv / PATH.barriers.csv /
  // PATH.json for the first replica.
  std::string prefix = args.get("export-prefix");
  if (!prefix.empty()) {
    std::string error;
    if (!exp::write_file(prefix + ".jobs.csv", exp::jobs_csv(runs.front()), &error) ||
        !exp::write_file(prefix + ".barriers.csv", exp::barriers_csv(runs.front()),
                    &error) ||
        !exp::write_file(prefix + ".json", exp::to_json(runs.front()), &error)) {
      err << "tlsim: export failed: " << error << "\n";
      return 1;
    }
    out << "exported " << prefix << ".{jobs.csv,barriers.csv,json}\n";
  }
  return 0;
}

int cmd_compare(const CliArgs& args, const exp::ExperimentConfig& config,
                const RunOptions& options, std::ostream& out) {
  metrics::Table table({"policy", "avg JCT (s)", "min", "max", "norm",
                        "barrier wait (ms)", "wait var (ms^2)", "tc cmds"});
  // Plan order is FIFO, TLs-One, TLs-RR; FIFO (index 0) is the baseline.
  RunReport report =
      run_plan(RunPlan::policy_comparison(config), options);
  const exp::ExperimentResult& fifo = report.results.front();
  for (const exp::ExperimentResult& r : report.results) {
    add_result_row(&table, r, exp::avg_normalized_jct(r, fifo));
  }
  emit(table, args.has("csv"), out);
  return 0;
}

int cmd_sweep_placement(const CliArgs& args, const exp::ExperimentConfig& config,
                        const RunOptions& options,
                        std::ostream& out) {
  metrics::Table table({"placement", "FIFO avg JCT (s)", "TLs-One norm",
                        "TLs-RR norm"});
  const std::vector<int> indices = {1, 2, 3, 4, 5, 6, 7, 8};
  RunReport report = run_plan(
      RunPlan::placement_sweep(config, indices,
                                        RunPlan::default_policies()),
      options);
  // Row-major: results[3*i + {0,1,2}] = placement indices[i] under
  // {FIFO, TLs-One, TLs-RR}.
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const exp::ExperimentResult& fifo = report.results[3 * i];
    const exp::ExperimentResult& one = report.results[3 * i + 1];
    const exp::ExperimentResult& rr = report.results[3 * i + 2];
    table.add_row({"#" + std::to_string(indices[i]),
                   metrics::fmt(fifo.avg_jct_s),
                   metrics::fmt(exp::avg_normalized_jct(one, fifo), 3),
                   metrics::fmt(exp::avg_normalized_jct(rr, fifo), 3)});
  }
  emit(table, args.has("csv"), out);
  return 0;
}

int cmd_sweep_batch(const CliArgs& args, const exp::ExperimentConfig& config,
                    const RunOptions& options, std::ostream& out) {
  metrics::Table table({"batch", "FIFO avg JCT (s)", "TLs-One norm",
                        "TLs-RR norm"});
  const std::vector<int> batches = {1, 2, 4, 8, 16};
  RunReport report = run_plan(
      RunPlan::batch_sweep(config, batches,
                                    RunPlan::default_policies()),
      options);
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const exp::ExperimentResult& fifo = report.results[3 * i];
    const exp::ExperimentResult& one = report.results[3 * i + 1];
    const exp::ExperimentResult& rr = report.results[3 * i + 2];
    table.add_row({std::to_string(batches[i]), metrics::fmt(fifo.avg_jct_s),
                   metrics::fmt(exp::avg_normalized_jct(one, fifo), 3),
                   metrics::fmt(exp::avg_normalized_jct(rr, fifo), 3)});
  }
  emit(table, args.has("csv"), out);
  return 0;
}

// ---------------------------------------------------------------------
// tlsim scenario — the dynamic-cluster workload engine front end.

/// Every --scenario-* key the CLI understands; anything else starting
/// with "scenario-" is rejected with this list (mirroring the
/// --trace-filter category check).
const char* const kScenarioFlagNames[] = {
    "scenario-jobs",         "scenario-arrivals",
    "scenario-mean-s",       "scenario-pareto-alpha",
    "scenario-pareto-min-s", "scenario-pareto-max-s",
    "scenario-models",       "scenario-workers-min",
    "scenario-workers-max",  "scenario-iters-min",
    "scenario-iters-max",    "scenario-batch",
    "scenario-evict-frac",   "scenario-evict-min-s",
    "scenario-evict-max-s",  "scenario-trace-seed",
    "scenario-admission",    "scenario-band-limit",
    "scenario-time-limit-s", "scenario-sample-s",
    "scenario-compare",      "scenario-trace",
    "scenario-trace-out",    "scenario-out",
    "scenario-csv",
};

bool check_scenario_flag_names(const CliArgs& args, std::string* error) {
  for (const auto& [k, v] : args.flags) {
    (void)v;
    if (k.rfind("scenario-", 0) != 0) continue;
    bool known = false;
    for (const char* name : kScenarioFlagNames) {
      if (k == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string valid;
      for (const char* name : kScenarioFlagNames) {
        if (!valid.empty()) valid += ", ";
        valid += "--";
        valid += name;
      }
      *error = "unknown flag --" + k + " (valid scenario flags: " + valid + ")";
      return false;
    }
  }
  return true;
}

bool parse_arrivals(const std::string& s, scenario::ArrivalProcess* out) {
  if (s == "poisson") *out = scenario::ArrivalProcess::kPoisson;
  else if (s == "pareto") *out = scenario::ArrivalProcess::kParetoBounded;
  else return false;
  return true;
}

bool parse_admission(const std::string& s, cluster::AdmissionPolicy* out) {
  if (s == "share") *out = cluster::AdmissionPolicy::kShareBand;
  else if (s == "queue") *out = cluster::AdmissionPolicy::kQueue;
  else if (s == "reject") *out = cluster::AdmissionPolicy::kReject;
  else return false;
  return true;
}

bool build_scenario_config(const CliArgs& args, scenario::Config* config,
                           std::string* error) {
  if (!check_scenario_flag_names(args, error)) return false;

  auto to_long = [&](const std::string& key, long fallback, long lo, long hi,
                     long* out) {
    std::string v = args.get(key);
    if (v.empty()) {
      *out = fallback;
      return true;
    }
    char* end = nullptr;
    long parsed = std::strtol(v.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || parsed < lo || parsed > hi) {
      *error = "bad value for --" + key + ": '" + v + "'";
      return false;
    }
    *out = parsed;
    return true;
  };
  auto to_double = [&](const std::string& key, double fallback, double lo,
                       double* out) {
    std::string v = args.get(key);
    if (v.empty()) {
      *out = fallback;
      return true;
    }
    char* end = nullptr;
    double parsed = std::strtod(v.c_str(), &end);
    if (end == nullptr || *end != '\0' || parsed < lo) {
      *error = "bad value for --" + key + ": '" + v + "'";
      return false;
    }
    *out = parsed;
    return true;
  };

  long hosts, cores, bands, seed, trace_seed, jobs, workers_min, workers_max;
  long iters_min, iters_max, batch, band_limit;
  double interval_s, link_gbps, mean_s, alpha, pareto_min, pareto_max;
  double evict_frac, evict_min, evict_max, time_limit_s, sample_s;
  if (!to_long("hosts", 12, 2, 4096, &hosts)) return false;
  if (!to_long("cores", 6, 1, 1024, &cores)) return false;
  if (!to_long("bands", 6, 1, 15, &bands)) return false;
  if (!to_long("seed", 1, 0, INT64_MAX / 2, &seed)) return false;
  if (!to_long("scenario-trace-seed", 1, 0, INT64_MAX / 2, &trace_seed)) {
    return false;
  }
  if (!to_long("scenario-jobs", 100, 1, 100000, &jobs)) return false;
  if (!to_long("scenario-workers-min", 2, 1, 4095, &workers_min)) return false;
  if (!to_long("scenario-workers-max", 8, 1, 4095, &workers_max)) return false;
  if (!to_long("scenario-iters-min", 20, 1, 1000000, &iters_min)) return false;
  if (!to_long("scenario-iters-max", 80, 1, 1000000, &iters_max)) return false;
  if (!to_long("scenario-batch", 4, 1, 65536, &batch)) return false;
  if (!to_long("scenario-band-limit", -1, -1, 4096, &band_limit)) return false;
  if (!to_double("interval-s", 20.0, 1e-3, &interval_s)) return false;
  if (!to_double("link-gbps", 10.0, 1e-3, &link_gbps)) return false;
  if (!to_double("scenario-mean-s", 30.0, 1e-6, &mean_s)) return false;
  if (!to_double("scenario-pareto-alpha", 1.5, 1e-6, &alpha)) return false;
  if (!to_double("scenario-pareto-min-s", 2.0, 1e-6, &pareto_min)) return false;
  if (!to_double("scenario-pareto-max-s", 600.0, 1e-6, &pareto_max)) {
    return false;
  }
  if (!to_double("scenario-evict-frac", 0.0, 0.0, &evict_frac)) return false;
  if (!to_double("scenario-evict-min-s", 30.0, 1e-6, &evict_min)) return false;
  if (!to_double("scenario-evict-max-s", 300.0, 1e-6, &evict_max)) {
    return false;
  }
  if (!to_double("scenario-time-limit-s", 14400.0, 1.0, &time_limit_s)) {
    return false;
  }
  if (!to_double("scenario-sample-s", 10.0, 0.0, &sample_s)) return false;

  config->num_hosts = static_cast<int>(hosts);
  config->cores_per_host = static_cast<int>(cores);
  config->controller.max_bands = static_cast<int>(bands);
  config->controller.rotation_interval = sim::from_seconds(interval_s);
  config->fabric.link_rate = net::gbps(link_gbps);
  config->seed = static_cast<std::uint64_t>(seed);
  config->ps_band_limit = static_cast<int>(band_limit);
  config->time_limit = sim::from_seconds(time_limit_s);
  config->sample_period = sim::from_seconds(sample_s);

  if (!parse_policy(args.get("policy", "tls-rr"),
                    &config->controller.policy)) {
    *error = "bad --policy (fifo|tls-one|tls-rr)";
    return false;
  }
  if (!parse_strategy(args.get("strategy", "arrival"),
                      &config->controller.strategy)) {
    *error = "bad --strategy (arrival|random|smallest)";
    return false;
  }
  if (config->controller.max_bands > 8) {
    config->controller.data_plane = core::DataPlane::kPrio;
  }
  std::string arrivals = args.get("scenario-arrivals", "poisson");
  if (!parse_arrivals(arrivals, &config->trace.process)) {
    *error = "bad --scenario-arrivals '" + arrivals + "' (poisson|pareto)";
    return false;
  }
  std::string admission = args.get("scenario-admission", "share");
  if (!parse_admission(admission, &config->admission)) {
    *error = "bad --scenario-admission '" + admission +
             "' (share|queue|reject)";
    return false;
  }
  std::string models = args.get("scenario-models");
  if (!models.empty() &&
      !scenario::parse_model_mix(models, &config->trace.models, error)) {
    *error = "bad --scenario-models: " + *error;
    return false;
  }

  config->trace.num_jobs = static_cast<int>(jobs);
  config->trace.mean_interarrival_s = mean_s;
  config->trace.pareto_alpha = alpha;
  config->trace.pareto_min_s = pareto_min;
  config->trace.pareto_max_s = pareto_max;
  config->trace.min_workers = static_cast<int>(workers_min);
  config->trace.max_workers = static_cast<int>(workers_max);
  config->trace.min_iterations = iters_min;
  config->trace.max_iterations = iters_max;
  config->trace.local_batch_size = static_cast<int>(batch);
  config->trace.evict_fraction = evict_frac;
  config->trace.evict_min_s = evict_min;
  config->trace.evict_max_s = evict_max;
  config->trace.seed = static_cast<std::uint64_t>(trace_seed);
  if (workers_min > workers_max) {
    *error = "--scenario-workers-min must be <= --scenario-workers-max";
    return false;
  }
  if (iters_min > iters_max) {
    *error = "--scenario-iters-min must be <= --scenario-iters-max";
    return false;
  }
  if (evict_frac > 1.0) {
    *error = "--scenario-evict-frac must be <= 1";
    return false;
  }
  config->metrics_path = args.get("metrics");

  std::string trace_path = args.get("scenario-trace");
  if (!trace_path.empty()) {
    std::ifstream in(trace_path, std::ios::binary);
    if (!in) {
      *error = "cannot open --scenario-trace file: " + trace_path;
      return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!scenario::parse_trace_csv(buffer.str(), &config->replay, error)) {
      return false;
    }
  }
  return true;
}

void add_scenario_row(metrics::Table* table, const std::string& label,
                      const scenario::Result& r) {
  table->add_row({label, std::to_string(r.jobs.size()),
                  std::to_string(r.completed), std::to_string(r.evicted),
                  std::to_string(r.rejected), std::to_string(r.unfinished),
                  metrics::fmt(r.jct.mean), metrics::fmt(r.jct.p99),
                  metrics::fmt(r.queue_wait.mean),
                  std::to_string(r.peak_ps_colocation),
                  metrics::fmt(r.cluster_cpu_util, 3),
                  std::to_string(r.rotations),
                  std::to_string(r.tc_commands)});
}

int cmd_scenario(const CliArgs& args, const RunOptions& options,
                 std::ostream& out, std::ostream& err) {
  scenario::Config config;
  std::string error;
  if (!build_scenario_config(args, &config, &error)) {
    err << "tlsim: " << error << "\n";
    return 2;
  }

  std::string trace_out = args.get("scenario-trace-out");
  if (!trace_out.empty()) {
    scenario::Trace trace = config.replay.jobs.empty()
                                ? scenario::generate_trace(config.trace)
                                : config.replay;
    if (!scenario::write_file(trace_out, scenario::trace_csv(trace), &error)) {
      err << "tlsim: trace export failed: " << error << "\n";
      return 1;
    }
  }

  ScenarioPlan plan;
  if (args.has("scenario-compare")) {
    plan = ScenarioPlan::policy_comparison(config);
  } else {
    plan.add(core::to_string(config.controller.policy), config);
  }
  ScenarioReport report = run_scenario_plan(plan, options.jobs);

  metrics::Table table({"policy", "jobs", "done", "evict", "rej", "unfin",
                        "mean JCT (s)", "p99 JCT", "mean wait (s)",
                        "peak coloc", "cpu util", "rotations", "tc cmds"});
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    add_scenario_row(&table, report.labels[i], report.results[i]);
  }
  emit(table, args.has("csv"), out);

  std::string json_path = args.get("scenario-out");
  std::string csv_path = args.get("scenario-csv");
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const scenario::Result& r = report.results[i];
    bool multi = report.results.size() > 1;
    if (!json_path.empty()) {
      std::string path =
          multi ? obs::per_run_path(json_path, report.labels[i]) : json_path;
      if (!scenario::write_file(path, scenario::scenario_json(r), &error)) {
        err << "tlsim: scenario export failed: " << error << "\n";
        return 1;
      }
    }
    if (!csv_path.empty()) {
      std::string path =
          multi ? obs::per_run_path(csv_path, report.labels[i]) : csv_path;
      if (!scenario::write_file(path, scenario::scenario_csv(r), &error)) {
        err << "tlsim: scenario export failed: " << error << "\n";
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  CliArgs parsed;
  std::string error;
  if (!parse_args(args, &parsed, &error)) {
    err << "tlsim: " << error << "\n" << kUsage;
    return 2;
  }
  std::string command =
      parsed.positional.empty() ? "help" : parsed.positional.front();
  if (command == "help" || command == "--help") {
    out << kUsage;
    return 0;
  }

  RunOptions options;
  if (!build_run_options(parsed, &options, &error)) {
    err << "tlsim: " << error << "\n";
    return 2;
  }
  // The scenario command has its own configuration surface (dynamic
  // cluster, not the static testbed), so it skips build_config.
  if (command == "scenario") return cmd_scenario(parsed, options, out, err);

  exp::ExperimentConfig config;
  if (!build_config(parsed, &config, &error)) {
    err << "tlsim: " << error << "\n";
    return 2;
  }

  if (command == "run") return cmd_run(parsed, config, options, out, err);
  if (command == "compare") return cmd_compare(parsed, config, options, out);
  if (command == "sweep-placement") {
    return cmd_sweep_placement(parsed, config, options, out);
  }
  if (command == "sweep-batch") {
    return cmd_sweep_batch(parsed, config, options, out);
  }

  err << "tlsim: unknown command '" << command << "'\n" << kUsage;
  return 2;
}

}  // namespace tls::runtime
