#include "runtime/cli.hpp"

#include <cstdlib>
#include <ostream>

#include "exp/experiment.hpp"
#include "exp/export.hpp"
#include "metrics/report.hpp"
#include "runtime/runner.hpp"

namespace tls::runtime {

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  std::string value = fallback;
  for (const auto& [k, v] : flags) {
    if (k == key) value = v;
  }
  return value;
}

bool CliArgs::has(const std::string& key) const {
  for (const auto& [k, v] : flags) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

bool parse_args(const std::vector<std::string>& raw, CliArgs* out,
                std::string* error) {
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& a = raw[i];
    if (a.rfind("--", 0) != 0) {
      out->positional.push_back(a);
      continue;
    }
    std::string key = a.substr(2);
    if (key.empty()) {
      *error = "empty flag name";
      return false;
    }
    auto eq = key.find('=');
    if (eq != std::string::npos) {
      out->flags.emplace_back(key.substr(0, eq), key.substr(eq + 1));
      continue;
    }
    // "--key value" when the next token is not itself a flag; otherwise a
    // boolean switch.
    if (i + 1 < raw.size() && raw[i + 1].rfind("--", 0) != 0) {
      out->flags.emplace_back(key, raw[i + 1]);
      ++i;
    } else {
      out->flags.emplace_back(key, "true");
    }
  }
  return true;
}

namespace {

constexpr const char* kUsage = R"(tlsim - TensorLights cluster simulator

usage: tlsim <command> [flags]

commands:
  run              one experiment, full report
  compare          FIFO vs TLs-One vs TLs-RR on one configuration
  sweep-placement  Table I placements under every policy
  sweep-batch      local batch sizes {1,2,4,8,16} under every policy
  help             this text

flags (defaults = the paper's testbed):
  --hosts N (21) --jobs N (21) --workers N (20) --ps N (1)
  --batch N (4) --iters N (60) --placement IDX (1) --seed N (1)
  --policy fifo|tls-one|tls-rr (tls-rr)
  --strategy arrival|random|smallest (arrival)
  --bands N (6) --interval-s X (10) --link-gbps X (10)
  --replicas N (1) --background --csv --export-prefix PATH

execution flags (host-side; results are byte-identical at any thread count):
  --threads N      worker threads for independent runs
                   (0 = $TLS_JOBS or hardware concurrency; 1 = serial)
  --cache DIR      content-addressed result cache (default: $TLS_CACHE_DIR;
                   unset = off) --no-cache forces it off
  --progress       per-run progress/ETA lines on stderr

observability flags (artifacts never change results; multi-run commands
derive per-run paths, e.g. trace.json -> trace.run-label.json):
  --trace PATH         Chrome trace-event JSON (Perfetto/chrome://tracing)
  --trace-csv PATH     same events in compact CSV form
  --trace-filter CATS  comma list of chunk,qdisc,htb,rotation,barrier,
                       straggler,sample,flow,ingress,compute; or
                       all (default) / none
  --metrics PATH       long-format metrics timeseries CSV
  --report PATH        straggler-attribution report (critical-path
                       decomposition + contention blame; tlsreport text)
  --report-csv PATH    same report as tidy long CSV
  --report-json PATH   same report as tlsreport-v1 JSON
)";

bool parse_policy(const std::string& s, core::PolicyKind* out) {
  if (s == "fifo") *out = core::PolicyKind::kFifo;
  else if (s == "tls-one") *out = core::PolicyKind::kTlsOne;
  else if (s == "tls-rr") *out = core::PolicyKind::kTlsRR;
  else return false;
  return true;
}

bool parse_strategy(const std::string& s, core::AssignStrategy* out) {
  if (s == "arrival") *out = core::AssignStrategy::kArrivalOrder;
  else if (s == "random") *out = core::AssignStrategy::kRandom;
  else if (s == "smallest") *out = core::AssignStrategy::kSmallestModelFirst;
  else return false;
  return true;
}

/// Builds the experiment configuration from flags; returns false with a
/// message on any invalid value.
bool build_config(const CliArgs& args, exp::ExperimentConfig* config,
                  std::string* error) {
  auto to_long = [&](const std::string& key, long fallback, long lo, long hi,
                     long* out) {
    std::string v = args.get(key);
    if (v.empty()) {
      *out = fallback;
      return true;
    }
    char* end = nullptr;
    long parsed = std::strtol(v.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || parsed < lo || parsed > hi) {
      *error = "bad value for --" + key + ": '" + v + "'";
      return false;
    }
    *out = parsed;
    return true;
  };
  auto to_double = [&](const std::string& key, double fallback, double* out) {
    std::string v = args.get(key);
    if (v.empty()) {
      *out = fallback;
      return true;
    }
    char* end = nullptr;
    double parsed = std::strtod(v.c_str(), &end);
    if (end == nullptr || *end != '\0' || parsed <= 0) {
      *error = "bad value for --" + key + ": '" + v + "'";
      return false;
    }
    *out = parsed;
    return true;
  };

  long hosts, jobs, workers, ps, batch, iters, placement, seed, bands;
  double interval_s, link_gbps;
  if (!to_long("hosts", 21, 2, 4096, &hosts)) return false;
  if (!to_long("jobs", 21, 1, 4096, &jobs)) return false;
  if (!to_long("workers", 20, 1, 4095, &workers)) return false;
  if (!to_long("ps", 1, 1, 64, &ps)) return false;
  if (!to_long("batch", 4, 1, 65536, &batch)) return false;
  if (!to_long("iters", 60, 1, 1000000, &iters)) return false;
  if (!to_long("placement", 1, 1, 8, &placement)) return false;
  if (!to_long("seed", 1, 0, INT64_MAX / 2, &seed)) return false;
  if (!to_long("bands", 6, 1, 15, &bands)) return false;
  if (!to_double("interval-s", 10.0, &interval_s)) return false;
  if (!to_double("link-gbps", 10.0, &link_gbps)) return false;

  config->num_hosts = static_cast<int>(hosts);
  config->workload.num_jobs = static_cast<int>(jobs);
  config->workload.workers_per_job = static_cast<int>(workers);
  config->workload.ps_per_job = static_cast<int>(ps);
  config->workload.local_batch_size = static_cast<int>(batch);
  config->workload.global_step_target = workers * iters;
  config->placement =
      cluster::table1(static_cast<int>(placement), static_cast<int>(jobs));
  config->seed = static_cast<std::uint64_t>(seed);
  config->fabric.link_rate = net::gbps(link_gbps);
  config->controller.max_bands = static_cast<int>(bands);
  config->controller.rotation_interval = sim::from_seconds(interval_s);
  config->background = args.has("background");

  if (workers > hosts - 1) {
    *error = "--workers must be <= --hosts - 1";
    return false;
  }
  if (!parse_policy(args.get("policy", "tls-rr"), &config->controller.policy)) {
    *error = "bad --policy (fifo|tls-one|tls-rr)";
    return false;
  }
  if (!parse_strategy(args.get("strategy", "arrival"),
                      &config->controller.strategy)) {
    *error = "bad --strategy (arrival|random|smallest)";
    return false;
  }
  // The prio data plane allows more bands than htb's 8 priority levels.
  if (config->controller.max_bands > 8) {
    config->controller.data_plane = core::DataPlane::kPrio;
  }

  config->obs.trace_path = args.get("trace");
  config->obs.trace_csv_path = args.get("trace-csv");
  config->obs.metrics_path = args.get("metrics");
  config->obs.report_path = args.get("report");
  config->obs.report_csv_path = args.get("report-csv");
  config->obs.report_json_path = args.get("report-json");
  std::string filter = args.get("trace-filter");
  if (!filter.empty() &&
      !obs::parse_categories(filter, &config->obs.trace_categories, error)) {
    return false;
  }
  return true;
}

/// Host-execution options (threads / cache / progress) from flags; false
/// with a message on a malformed value.
bool build_run_options(const CliArgs& args, RunOptions* options,
                       std::string* error) {
  std::string threads = args.get("threads", "0");
  char* end = nullptr;
  long parsed = std::strtol(threads.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || parsed < 0 || parsed > 4096) {
    *error = "bad value for --threads: '" + threads + "'";
    return false;
  }
  options->jobs = static_cast<int>(parsed);
  if (args.has("cache")) options->cache_dir = args.get("cache");
  if (args.has("no-cache")) options->cache_dir.clear();
  options->progress = args.has("progress");
  return true;
}

void emit(const metrics::Table& table, bool csv, std::ostream& out) {
  out << (csv ? table.csv() : table.str()) << "\n";
}

void add_result_row(metrics::Table* table, const exp::ExperimentResult& r,
                    double norm) {
  table->add_row({r.policy_name, metrics::fmt(r.avg_jct_s),
                  metrics::fmt(r.min_jct_s), metrics::fmt(r.max_jct_s),
                  metrics::fmt(norm, 3),
                  metrics::fmt(r.barrier_mean_summary.mean * 1e3, 1),
                  metrics::fmt(r.barrier_variance_summary.mean * 1e6, 0),
                  std::to_string(r.tc_commands)});
}

int cmd_run(const CliArgs& args, const exp::ExperimentConfig& config,
            const RunOptions& options, std::ostream& out,
            std::ostream& err) {
  long replicas = std::strtol(args.get("replicas", "1").c_str(), nullptr, 10);
  if (replicas < 1) replicas = 1;
  RunReport report = run_plan(
      RunPlan::replicated(config, static_cast<int>(replicas)),
      options);
  std::vector<exp::ExperimentResult>& runs = report.results;
  metrics::Table table({"policy", "avg JCT (s)", "min", "max", "norm",
                        "barrier wait (ms)", "wait var (ms^2)", "tc cmds"});
  for (const auto& r : runs) add_result_row(&table, r, 1.0);
  emit(table, args.has("csv"), out);
  if (replicas > 1) {
    metrics::Summary s = exp::jct_across(runs);
    out << "avg JCT across " << replicas << " seeds: " << metrics::fmt(s.mean)
        << " +/- " << metrics::fmt(s.stddev) << " s\n";
  }
  // --export-prefix PATH writes PATH.jobs.csv / PATH.barriers.csv /
  // PATH.json for the first replica.
  std::string prefix = args.get("export-prefix");
  if (!prefix.empty()) {
    std::string error;
    if (!exp::write_file(prefix + ".jobs.csv", exp::jobs_csv(runs.front()), &error) ||
        !exp::write_file(prefix + ".barriers.csv", exp::barriers_csv(runs.front()),
                    &error) ||
        !exp::write_file(prefix + ".json", exp::to_json(runs.front()), &error)) {
      err << "tlsim: export failed: " << error << "\n";
      return 1;
    }
    out << "exported " << prefix << ".{jobs.csv,barriers.csv,json}\n";
  }
  return 0;
}

int cmd_compare(const CliArgs& args, const exp::ExperimentConfig& config,
                const RunOptions& options, std::ostream& out) {
  metrics::Table table({"policy", "avg JCT (s)", "min", "max", "norm",
                        "barrier wait (ms)", "wait var (ms^2)", "tc cmds"});
  // Plan order is FIFO, TLs-One, TLs-RR; FIFO (index 0) is the baseline.
  RunReport report =
      run_plan(RunPlan::policy_comparison(config), options);
  const exp::ExperimentResult& fifo = report.results.front();
  for (const exp::ExperimentResult& r : report.results) {
    add_result_row(&table, r, exp::avg_normalized_jct(r, fifo));
  }
  emit(table, args.has("csv"), out);
  return 0;
}

int cmd_sweep_placement(const CliArgs& args, const exp::ExperimentConfig& config,
                        const RunOptions& options,
                        std::ostream& out) {
  metrics::Table table({"placement", "FIFO avg JCT (s)", "TLs-One norm",
                        "TLs-RR norm"});
  const std::vector<int> indices = {1, 2, 3, 4, 5, 6, 7, 8};
  RunReport report = run_plan(
      RunPlan::placement_sweep(config, indices,
                                        RunPlan::default_policies()),
      options);
  // Row-major: results[3*i + {0,1,2}] = placement indices[i] under
  // {FIFO, TLs-One, TLs-RR}.
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const exp::ExperimentResult& fifo = report.results[3 * i];
    const exp::ExperimentResult& one = report.results[3 * i + 1];
    const exp::ExperimentResult& rr = report.results[3 * i + 2];
    table.add_row({"#" + std::to_string(indices[i]),
                   metrics::fmt(fifo.avg_jct_s),
                   metrics::fmt(exp::avg_normalized_jct(one, fifo), 3),
                   metrics::fmt(exp::avg_normalized_jct(rr, fifo), 3)});
  }
  emit(table, args.has("csv"), out);
  return 0;
}

int cmd_sweep_batch(const CliArgs& args, const exp::ExperimentConfig& config,
                    const RunOptions& options, std::ostream& out) {
  metrics::Table table({"batch", "FIFO avg JCT (s)", "TLs-One norm",
                        "TLs-RR norm"});
  const std::vector<int> batches = {1, 2, 4, 8, 16};
  RunReport report = run_plan(
      RunPlan::batch_sweep(config, batches,
                                    RunPlan::default_policies()),
      options);
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const exp::ExperimentResult& fifo = report.results[3 * i];
    const exp::ExperimentResult& one = report.results[3 * i + 1];
    const exp::ExperimentResult& rr = report.results[3 * i + 2];
    table.add_row({std::to_string(batches[i]), metrics::fmt(fifo.avg_jct_s),
                   metrics::fmt(exp::avg_normalized_jct(one, fifo), 3),
                   metrics::fmt(exp::avg_normalized_jct(rr, fifo), 3)});
  }
  emit(table, args.has("csv"), out);
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  CliArgs parsed;
  std::string error;
  if (!parse_args(args, &parsed, &error)) {
    err << "tlsim: " << error << "\n" << kUsage;
    return 2;
  }
  std::string command =
      parsed.positional.empty() ? "help" : parsed.positional.front();
  if (command == "help" || command == "--help") {
    out << kUsage;
    return 0;
  }

  exp::ExperimentConfig config;
  if (!build_config(parsed, &config, &error)) {
    err << "tlsim: " << error << "\n";
    return 2;
  }
  RunOptions options;
  if (!build_run_options(parsed, &options, &error)) {
    err << "tlsim: " << error << "\n";
    return 2;
  }

  if (command == "run") return cmd_run(parsed, config, options, out, err);
  if (command == "compare") return cmd_compare(parsed, config, options, out);
  if (command == "sweep-placement") {
    return cmd_sweep_placement(parsed, config, options, out);
  }
  if (command == "sweep-batch") {
    return cmd_sweep_batch(parsed, config, options, out);
  }

  err << "tlsim: unknown command '" << command << "'\n" << kUsage;
  return 2;
}

}  // namespace tls::runtime
