#include "runtime/result_cache.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace tls::runtime {

namespace {

/// Bump whenever canonical_config or the encode_result layout changes, so
/// stale cache files from older schemas read as misses.
constexpr int kResultSchema = 1;

/// Exact textual form of a double: C99 hex-float, round-trips through
/// strtod bit-for-bit.
std::string hexf(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

class Writer {
 public:
  void kv(const char* key, const std::string& value) {
    os_ << key << ' ' << value << '\n';
  }
  void kv(const char* key, double value) { kv(key, hexf(value)); }
  void kv(const char* key, std::int64_t value) {
    os_ << key << ' ' << value << '\n';
  }
  void kv(const char* key, std::uint64_t value) {
    os_ << key << ' ' << value << '\n';
  }
  void kv(const char* key, int value) {
    kv(key, static_cast<std::int64_t>(value));
  }
  void kv(const char* key, bool value) {
    kv(key, static_cast<std::int64_t>(value ? 1 : 0));
  }
  // Strong types flatten to their historical cache encodings (Time and
  // Bytes as int64, Rate as hex-float) so existing cache keys stay valid.
  void kv(const char* key, sim::Time value) { kv(key, sim::to_nanos(value)); }
  void kv(const char* key, net::Bytes value) { kv(key, value.raw()); }
  void kv(const char* key, net::Rate value) { kv(key, value.raw()); }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

/// Token reader over the serialized form. Every read checks the expected
/// key so truncated or reordered files fail fast instead of mis-parsing.
class Reader {
 public:
  explicit Reader(const std::string& text) : is_(text) {}

  bool key(const char* expected) {
    std::string k;
    return (is_ >> k) && k == expected;
  }
  bool value(double* out) {
    std::string tok;
    if (!(is_ >> tok)) return false;
    char* end = nullptr;
    *out = std::strtod(tok.c_str(), &end);
    return end != nullptr && *end == '\0' && end != tok.c_str();
  }
  bool value(std::int64_t* out) { return static_cast<bool>(is_ >> *out); }
  bool value(std::uint64_t* out) { return static_cast<bool>(is_ >> *out); }
  bool value(int* out) { return static_cast<bool>(is_ >> *out); }
  bool value(bool* out) {
    int v = 0;
    if (!(is_ >> v)) return false;
    *out = v != 0;
    return true;
  }
  /// Length-prefixed string: "<len> <raw bytes>"; the single separator
  /// space is consumed, everything after is raw (may contain spaces).
  bool str_value(std::string* out) {
    std::size_t len = 0;
    if (!(is_ >> len)) return false;
    is_.get();  // the separator
    out->resize(len);
    is_.read(out->data(), static_cast<std::streamsize>(len));
    return is_.gcount() == static_cast<std::streamsize>(len);
  }
  bool kv(const char* k, double* out) { return key(k) && value(out); }
  bool kv(const char* k, std::int64_t* out) { return key(k) && value(out); }
  bool kv(const char* k, std::uint64_t* out) { return key(k) && value(out); }
  bool kv(const char* k, int* out) { return key(k) && value(out); }
  bool kv(const char* k, bool* out) { return key(k) && value(out); }
  bool kv(const char* k, sim::Time* out) {
    std::int64_t v = 0;
    if (!key(k) || !value(&v)) return false;
    *out = sim::from_nanos(v);
    return true;
  }

 private:
  std::istringstream is_;
};

std::string len_prefixed(const std::string& s) {
  return std::to_string(s.size()) + " " + s;
}

void encode_summary(Writer* w, const char* name,
                    const metrics::Summary& s) {
  w->kv(name, static_cast<std::uint64_t>(s.count));
  w->kv("mean", s.mean);
  w->kv("median", s.median);
  w->kv("variance", s.variance);
  w->kv("stddev", s.stddev);
  w->kv("min", s.min);
  w->kv("max", s.max);
  w->kv("p25", s.p25);
  w->kv("p75", s.p75);
  w->kv("p90", s.p90);
  w->kv("p99", s.p99);
}

bool decode_summary(Reader* r, const char* name, metrics::Summary* s) {
  std::uint64_t count = 0;
  if (!r->kv(name, &count)) return false;
  s->count = static_cast<std::size_t>(count);
  return r->kv("mean", &s->mean) && r->kv("median", &s->median) &&
         r->kv("variance", &s->variance) && r->kv("stddev", &s->stddev) &&
         r->kv("min", &s->min) && r->kv("max", &s->max) &&
         r->kv("p25", &s->p25) && r->kv("p75", &s->p75) &&
         r->kv("p90", &s->p90) && r->kv("p99", &s->p99);
}

}  // namespace

// ExperimentConfig::obs is deliberately absent from the encoding:
// observability artifacts never influence the simulation result, and
// RunSet bypasses the cache for obs-enabled runs (a hit would skip the
// artifact writes).
std::string canonical_config(const exp::ExperimentConfig& c) {
  Writer w;
  w.kv("schema", kResultSchema);
  w.kv("num_hosts", c.num_hosts);
  w.kv("cores_per_host", c.cores_per_host);

  w.kv("fabric.num_hosts", c.fabric.num_hosts);
  w.kv("fabric.link_rate", c.fabric.link_rate);
  w.kv("fabric.switch_latency", c.fabric.switch_latency);
  w.kv("fabric.chunk_size", c.fabric.chunk_size);
  w.kv("fabric.flow_window", c.fabric.flow_window);
  w.kv("fabric.tcp_weight_sigma", c.fabric.tcp_weight_sigma);
  w.kv("fabric.protocol_overhead", c.fabric.protocol_overhead);

  w.kv("workload.num_jobs", c.workload.num_jobs);
  w.kv("workload.model.name", len_prefixed(c.workload.model.name));
  w.kv("workload.model.parameters", c.workload.model.parameters);
  w.kv("workload.model.ms_per_sample", c.workload.model.ms_per_sample);
  w.kv("workload.workers_per_job", c.workload.workers_per_job);
  w.kv("workload.ps_per_job", c.workload.ps_per_job);
  w.kv("workload.local_batch_size", c.workload.local_batch_size);
  w.kv("workload.global_step_target", c.workload.global_step_target);
  w.kv("workload.mode", static_cast<int>(c.workload.mode));
  w.kv("workload.compute_sigma", c.workload.compute_sigma);
  w.kv("workload.step_overhead", c.workload.step_overhead);

  w.kv("background", c.background);
  w.kv("background.flows_per_second", c.background_config.flows_per_second);
  w.kv("background.mean_bytes", c.background_config.mean_bytes);
  w.kv("background.port", static_cast<int>(c.background_config.port));

  w.kv("coordinated_transport", c.coordinated_transport);
  w.kv("coordinator.slots_per_host", c.coordinator_config.slots_per_host);
  w.kv("coordinator.coordination_rtt",
       c.coordinator_config.coordination_rtt);

  w.kv("placement.index", c.placement.index);
  w.kv("placement.name", len_prefixed(c.placement.name));
  w.kv("placement.groups",
       static_cast<std::int64_t>(c.placement.group_sizes.size()));
  for (int g : c.placement.group_sizes) w.kv("g", g);

  w.kv("controller.policy", static_cast<int>(c.controller.policy));
  w.kv("controller.strategy", static_cast<int>(c.controller.strategy));
  w.kv("controller.data_plane", static_cast<int>(c.controller.data_plane));
  w.kv("controller.max_bands", c.controller.max_bands);
  w.kv("controller.rotation_interval", c.controller.rotation_interval);
  w.kv("controller.default_class_rate_fraction",
       c.controller.default_class_rate_fraction);
  w.kv("controller.prioritize_gradients", c.controller.prioritize_gradients);

  w.kv("stagger", c.stagger);
  w.kv("seed", c.seed);
  w.kv("nic_sample_period", c.nic_sample_period);
  w.kv("active_window_begin_frac", c.active_window_begin_frac);
  w.kv("active_window_end_frac", c.active_window_end_frac);
  w.kv("time_limit", c.time_limit);
  return w.str();
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string code_version_salt() {
#ifdef TLS_CODE_VERSION
  return TLS_CODE_VERSION;
#else
  return "unversioned";
#endif
}

std::string encode_result(const exp::ExperimentResult& r) {
  Writer w;
  w.kv("policy_name", len_prefixed(r.policy_name));
  w.kv("avg_jct_s", r.avg_jct_s);
  w.kv("min_jct_s", r.min_jct_s);
  w.kv("max_jct_s", r.max_jct_s);
  encode_summary(&w, "barrier_mean_summary", r.barrier_mean_summary);
  encode_summary(&w, "barrier_variance_summary", r.barrier_variance_summary);
  w.kv("cpu_util_ps_hosts", r.cpu_util_ps_hosts);
  w.kv("cpu_util_worker_hosts", r.cpu_util_worker_hosts);
  w.kv("nic_in_util", r.nic_in_util);
  w.kv("nic_out_util", r.nic_out_util);
  w.kv("active_window_begin", r.active_window_begin);
  w.kv("active_window_end", r.active_window_end);
  w.kv("tc_commands", r.tc_commands);
  w.kv("rotations", r.rotations);
  w.kv("sim_events", r.sim_events);
  w.kv("sim_horizon_s", r.sim_horizon_s);
  w.kv("all_finished", r.all_finished);
  w.kv("background_flows", r.background_flows);
  w.kv("background_mean_fct_s", r.background_mean_fct_s);
  w.kv("coordinator_grants", r.coordinator_grants);
  w.kv("coordinator_wait_s", r.coordinator_wait_s);
  w.kv("jobs", static_cast<std::int64_t>(r.jobs.size()));
  for (const exp::JobResult& j : r.jobs) {
    w.kv("job_id", static_cast<std::int64_t>(j.job_id));
    w.kv("jct_s", j.jct_s);
    w.kv("iterations", j.iterations);
    w.kv("finished", j.finished);
    w.kv("barriers",
         static_cast<std::int64_t>(j.barrier_mean_waits_s.size()));
    for (double v : j.barrier_mean_waits_s) w.kv("bm", v);
    for (double v : j.barrier_variances_s2) w.kv("bv", v);
  }
  w.kv("end", std::int64_t{1});
  return w.str();
}

bool decode_result(const std::string& text, exp::ExperimentResult* out) {
  Reader r(text);
  exp::ExperimentResult res;
  if (!r.key("policy_name") || !r.str_value(&res.policy_name)) return false;
  if (!r.kv("avg_jct_s", &res.avg_jct_s)) return false;
  if (!r.kv("min_jct_s", &res.min_jct_s)) return false;
  if (!r.kv("max_jct_s", &res.max_jct_s)) return false;
  if (!decode_summary(&r, "barrier_mean_summary", &res.barrier_mean_summary)) {
    return false;
  }
  if (!decode_summary(&r, "barrier_variance_summary",
                      &res.barrier_variance_summary)) {
    return false;
  }
  if (!r.kv("cpu_util_ps_hosts", &res.cpu_util_ps_hosts)) return false;
  if (!r.kv("cpu_util_worker_hosts", &res.cpu_util_worker_hosts)) {
    return false;
  }
  if (!r.kv("nic_in_util", &res.nic_in_util)) return false;
  if (!r.kv("nic_out_util", &res.nic_out_util)) return false;
  if (!r.kv("active_window_begin", &res.active_window_begin)) return false;
  if (!r.kv("active_window_end", &res.active_window_end)) return false;
  if (!r.kv("tc_commands", &res.tc_commands)) return false;
  if (!r.kv("rotations", &res.rotations)) return false;
  if (!r.kv("sim_events", &res.sim_events)) return false;
  if (!r.kv("sim_horizon_s", &res.sim_horizon_s)) return false;
  if (!r.kv("all_finished", &res.all_finished)) return false;
  if (!r.kv("background_flows", &res.background_flows)) return false;
  if (!r.kv("background_mean_fct_s", &res.background_mean_fct_s)) {
    return false;
  }
  if (!r.kv("coordinator_grants", &res.coordinator_grants)) return false;
  if (!r.kv("coordinator_wait_s", &res.coordinator_wait_s)) return false;

  std::int64_t jobs = 0;
  if (!r.kv("jobs", &jobs) || jobs < 0) return false;
  res.jobs.reserve(static_cast<std::size_t>(jobs));
  for (std::int64_t i = 0; i < jobs; ++i) {
    exp::JobResult j;
    std::int64_t id = 0;
    if (!r.kv("job_id", &id)) return false;
    j.job_id = static_cast<std::int32_t>(id);
    if (!r.kv("jct_s", &j.jct_s)) return false;
    if (!r.kv("iterations", &j.iterations)) return false;
    if (!r.kv("finished", &j.finished)) return false;
    std::int64_t barriers = 0;
    if (!r.kv("barriers", &barriers) || barriers < 0) return false;
    j.barrier_mean_waits_s.resize(static_cast<std::size_t>(barriers));
    j.barrier_variances_s2.resize(static_cast<std::size_t>(barriers));
    for (double& v : j.barrier_mean_waits_s) {
      if (!r.kv("bm", &v)) return false;
    }
    for (double& v : j.barrier_variances_s2) {
      if (!r.kv("bv", &v)) return false;
    }
    res.jobs.push_back(std::move(j));
  }
  std::int64_t sentinel = 0;
  if (!r.kv("end", &sentinel) || sentinel != 1) return false;
  *out = std::move(res);
  return true;
}

ResultCache::ResultCache(std::filesystem::path dir, std::string salt)
    : dir_(std::move(dir)), salt_(std::move(salt)) {}

std::string ResultCache::key(const exp::ExperimentConfig& config) const {
  std::string canonical = salt_ + "\n" + canonical_config(config);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, fnv1a64(canonical));
  return buf;
}

std::filesystem::path ResultCache::path_for(const std::string& key) const {
  return dir_ / (key + ".result");
}

std::optional<exp::ExperimentResult> ResultCache::load(
    const exp::ExperimentConfig& config) const {
  std::ifstream in(path_for(key(config)), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();

  Reader header(text);
  std::string salt, stored_config;
  if (!header.key("tls-result-cache")) return std::nullopt;
  int schema = 0;
  if (!header.value(&schema) || schema != kResultSchema) return std::nullopt;
  if (!header.key("salt") || !header.str_value(&salt) || salt != salt_) {
    return std::nullopt;
  }
  if (!header.key("config") || !header.str_value(&stored_config) ||
      stored_config != canonical_config(config)) {
    // Hash collision or schema drift: treat as a miss, never trust it.
    return std::nullopt;
  }
  std::size_t result_at = text.find("\nresult\n");
  if (result_at == std::string::npos) return std::nullopt;
  exp::ExperimentResult result;
  if (!decode_result(text.substr(result_at + 8), &result)) return std::nullopt;
  return result;
}

bool ResultCache::store(const exp::ExperimentConfig& config,
                        const exp::ExperimentResult& result) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return false;

  Writer header;
  header.kv("tls-result-cache", kResultSchema);
  header.kv("salt", len_prefixed(salt_));
  header.kv("config", len_prefixed(canonical_config(config)));
  std::string payload = header.str() + "result\n" + encode_result(result);

  std::string k = key(config);
  // Unique temp name per (process, key); a racing writer of the same key
  // writes identical bytes, and rename() makes whichever lands last win
  // atomically.
  std::filesystem::path tmp =
      dir_ / (k + ".tmp." + std::to_string(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << payload;
    out.flush();
    if (!out) {
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, path_for(k), ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace tls::runtime
