#include "runtime/thread_pool.hpp"

#include "simcore/check.hpp"

namespace tls::runtime {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  queues_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  TLS_CHECK(task != nullptr, "ThreadPool::submit: empty task");
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = next_queue_++ % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    // The task must be visible in its deque before the claim counter says
    // so, or take_task could spin on an empty pool.
    std::lock_guard<std::mutex> lock(mu_);
    ++queued_;
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  // Wakeup-ordering audit: `pending_` is incremented under mu_ *before*
  // submit() returns and decremented under mu_ only *after* the task body
  // finished, and the 0-crossing notifies idle_cv_ while holding mu_. The
  // predicate is therefore never stale at wakeup: wait_idle() cannot
  // return while a submitted task is still queued or executing, and a
  // notify between the predicate check and the wait re-arm is impossible
  // because both happen under mu_. Rapid submit/wait_idle cycles are
  // exercised under TSan by ThreadPool.RapidSubmitWaitIdleCycles.
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

int ThreadPool::hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

std::function<void()> ThreadPool::take_task(std::size_t self) {
  // The caller decremented `queued_` under mu_, claiming one task; the sum
  // of deque sizes is at least the number of outstanding claims, so the
  // scan below terminates (tasks are only removed by claim holders and are
  // never migrated between deques).
  for (;;) {
    {
      WorkerQueue& own = *queues_[self];
      std::lock_guard<std::mutex> lock(own.mu);
      if (!own.tasks.empty()) {
        std::function<void()> task = std::move(own.tasks.back());
        own.tasks.pop_back();
        return task;
      }
    }
    for (std::size_t k = 1; k < queues_.size(); ++k) {
      WorkerQueue& victim = *queues_[(self + k) % queues_.size()];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        std::function<void()> task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        return task;
      }
    }
    std::this_thread::yield();
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (queued_ == 0) return;  // stop_ set and nothing left to run
      --queued_;
    }
    std::function<void()> task = take_task(self);
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      if (pending_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace tls::runtime
