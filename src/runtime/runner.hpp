// tls::runtime — parallel experiment execution engine.
//
// A RunPlan is an ordered list of labelled, fully independent
// ExperimentConfigs (seed replicas, placement sweeps, policy comparisons,
// batch sweeps). RunSet fans the plan's entries across a work-stealing
// thread pool and returns results **keyed by run index, never by
// completion order**, so the output of a parallel run is byte-identical
// to a serial one — the repo-wide determinism contract survives
// parallelism untouched (witnessed by tests/runtime/runner_test.cpp).
//
// Each run is checked against the content-addressed ResultCache first
// (when a cache directory is configured), so re-running an unchanged
// sweep is near-instant.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace tls::runtime {

struct RunPlan {
  struct Entry {
    std::string label;  ///< for progress lines, e.g. "p3/tls-rr"
    exp::ExperimentConfig config;
  };
  std::vector<Entry> entries;

  void add(std::string label, exp::ExperimentConfig config);
  std::size_t size() const { return entries.size(); }
  bool empty() const { return entries.empty(); }

  /// `replicas` copies of `base` seeded base.seed, +1, ... (the
  /// exp::run_replicated contract).
  static RunPlan replicated(const exp::ExperimentConfig& base, int replicas);

  /// One run of `base` per policy, in the given order (default: FIFO,
  /// TLs-One, TLs-RR — FIFO first so it is the normalization baseline).
  static RunPlan policy_comparison(
      const exp::ExperimentConfig& base,
      const std::vector<core::PolicyKind>& policies = default_policies());

  /// Row-major placements × policies: entry i*|policies|+j is Table I
  /// placement `table1_indices[i]` under `policies[j]`.
  static RunPlan placement_sweep(const exp::ExperimentConfig& base,
                                 const std::vector<int>& table1_indices,
                                 const std::vector<core::PolicyKind>& policies);

  /// Row-major batch sizes × policies, same indexing as placement_sweep.
  static RunPlan batch_sweep(const exp::ExperimentConfig& base,
                             const std::vector<int>& batch_sizes,
                             const std::vector<core::PolicyKind>& policies);

  static std::vector<core::PolicyKind> default_policies();
};

/// Worker-thread count when RunOptions::jobs is 0: $TLS_JOBS when set and
/// positive, else std::thread::hardware_concurrency.
int default_jobs();

/// Cache directory when RunOptions::cache_dir is untouched: $TLS_CACHE_DIR
/// when set, else "" (caching off).
std::string default_cache_dir();

struct RunOptions {
  /// Worker threads; 0 = default_jobs(). 1 runs inline on the caller's
  /// thread with no pool at all.
  int jobs = 0;
  /// Result-cache directory; empty disables caching. Defaults to
  /// $TLS_CACHE_DIR so any caller can opt a whole process in.
  std::string cache_dir = default_cache_dir();
  /// Emit one progress/ETA line per completed run.
  bool progress = false;
  /// Progress destination; nullptr = std::cerr.
  std::ostream* progress_stream = nullptr;
};

struct RunReport {
  /// results[i] corresponds to plan.entries[i], regardless of completion
  /// order or cache hits.
  std::vector<exp::ExperimentResult> results;
  std::vector<std::string> labels;
  int jobs_used = 1;
  std::size_t cache_hits = 0;
  std::size_t cache_stores = 0;
  /// Host wall-clock of the whole run (the only wall-clock quantity this
  /// repo reports; simulation time is unaffected).
  double wall_s = 0;
};

class RunSet {
 public:
  explicit RunSet(RunOptions options = {});

  /// Executes every entry (cache-first), rethrowing the first worker
  /// exception after all in-flight runs drain.
  RunReport run(const RunPlan& plan);

  const RunOptions& options() const { return options_; }

 private:
  RunOptions options_;
};

/// One-shot convenience wrapper around RunSet.
RunReport run_plan(const RunPlan& plan, RunOptions options = {});

}  // namespace tls::runtime
