// Work-stealing thread pool for the experiment runtime.
//
// This is the ONLY module in src/ allowed to touch host threading
// primitives (enforced by the `threading-outside-runtime` lint rule): the
// simulator core stays single-threaded-deterministic, and parallelism is
// applied strictly *between* independent, fully-seeded experiment runs.
//
// Shape: one deque per worker. submit() distributes tasks round-robin;
// a worker pops its own deque LIFO (cache-warm) and steals FIFO from the
// other workers when its own deque is empty, so a burst of long runs
// submitted to one queue still spreads across all cores.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tls::runtime {

class ThreadPool {
 public:
  /// Spawns `threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int threads);

  /// Drains every already-submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (wrap with your own try/catch);
  /// an escaping exception would terminate the process.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. The pool is reusable
  /// afterwards.
  void wait_idle();

  int size() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with the zero-means-unknown case
  /// mapped to 1.
  static int hardware_threads();

 private:
  /// Per-worker task deque; `mu` is held only for push/pop, never while a
  /// task runs.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);

  /// Pops from own deque (back) or steals from another (front). Called
  /// only while holding a claim on one queued task, so it retries until a
  /// task is found.
  std::function<void()> take_task(std::size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;  // guards the counters below
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t queued_ = 0;   // submitted, not yet claimed by a worker
  std::size_t pending_ = 0;  // submitted, not yet finished
  std::size_t next_queue_ = 0;
  bool stop_ = false;
};

}  // namespace tls::runtime
