// Content-addressed on-disk cache of ExperimentResults.
//
// Key = FNV-1a over (code-version salt + the canonicalized
// ExperimentConfig). Two runs of an unchanged binary on an unchanged
// config hit the same file, so re-running a sweep whose inputs did not
// change is near-instant; any config field change — seed, placement,
// policy, fabric knob — produces a different key and a clean miss.
//
// Safety properties:
//  * The cache file stores the full canonical config and is compared on
//    load, so a 64-bit hash collision degrades to a miss, never a wrong
//    result.
//  * Doubles are serialized as C99 hex-floats (%a), which round-trip
//    exactly: a cache hit reproduces the result byte-for-byte through the
//    CSV/JSON exporters.
//  * Stores write to a unique temp file and rename() into place, so
//    concurrent writers (pool workers, parallel bench processes) never
//    expose a torn file.
//  * The salt defaults to the git revision captured at CMake configure
//    time (TLS_CODE_VERSION), so results produced by different code
//    versions never cross-contaminate. Delete the cache directory to
//    reclaim space at any time.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

#include "exp/experiment.hpp"

namespace tls::runtime {

/// Deterministic, exhaustive serialization of every ExperimentConfig field
/// (nested structs included). Keep in lockstep with ExperimentConfig: a
/// field missing here would let two different experiments share a cache
/// slot. The kResultSchema version below must be bumped on any change.
std::string canonical_config(const exp::ExperimentConfig& config);

/// 64-bit FNV-1a.
std::uint64_t fnv1a64(std::string_view bytes);

/// Salt mixed into every cache key: the git revision baked in at configure
/// time ("unversioned" outside a git checkout).
std::string code_version_salt();

/// Text serialization of a full ExperimentResult (exact double round-trip
/// via hex-floats). Exposed for tests.
std::string encode_result(const exp::ExperimentResult& result);

/// Parses encode_result output; false on malformed/truncated input.
bool decode_result(const std::string& text, exp::ExperimentResult* out);

class ResultCache {
 public:
  /// `dir` is created lazily on the first store.
  explicit ResultCache(std::filesystem::path dir,
                       std::string salt = code_version_salt());

  const std::filesystem::path& dir() const { return dir_; }

  /// Hex cache key of `config` under this cache's salt.
  std::string key(const exp::ExperimentConfig& config) const;

  /// Cached result, or nullopt on miss / salt mismatch / config mismatch /
  /// unparsable file.
  std::optional<exp::ExperimentResult> load(
      const exp::ExperimentConfig& config) const;

  /// Atomically persists `result`; false (never throws) on I/O failure —
  /// a broken cache disk degrades to rerunning, not to a crashed sweep.
  bool store(const exp::ExperimentConfig& config,
             const exp::ExperimentResult& result) const;

 private:
  std::filesystem::path path_for(const std::string& key) const;

  std::filesystem::path dir_;
  std::string salt_;
};

}  // namespace tls::runtime
