// tlsim command-line front end (library part, testable without a process).
//
// Commands:
//   tlsim run              one experiment, full report
//   tlsim compare          FIFO vs TLs-One vs TLs-RR on one configuration
//   tlsim sweep-placement  Table I placements under every policy
//   tlsim sweep-batch      local batch sizes under every policy
//   tlsim help
//
// Common flags (with defaults matching the paper's testbed):
//   --hosts N (21) --jobs N (21) --workers N (20) --ps N (1)
//   --batch N (4) --iters N (60) --placement IDX (1) --seed N (1)
//   --policy fifo|tls-one|tls-rr (tls-rr)
//   --strategy arrival|random|smallest (arrival)
//   --bands N (6) --interval-s X (10) --link-gbps X (10)
//   --replicas N (1) --background --csv
//
// Host-execution flags (results are byte-identical at any
// thread count):
//   --threads N (0 = $TLS_JOBS or hardware concurrency)
//   --cache DIR | --no-cache (default: $TLS_CACHE_DIR, unset = off)
//   --progress
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tls::runtime {

/// Parsed key-value flags ("--key value" or "--key=value"; bare "--key"
/// maps to "true"). Positional arguments are collected separately.
struct CliArgs {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  /// Last value of a flag, or `fallback` when absent.
  std::string get(const std::string& key, const std::string& fallback = "") const;
  bool has(const std::string& key) const;
};

/// Splits raw arguments (excluding argv[0]) into CliArgs. Returns false
/// and writes a message when a flag is malformed.
bool parse_args(const std::vector<std::string>& raw, CliArgs* out,
                std::string* error);

/// Executes a tlsim invocation. `args` excludes the program name.
/// Returns the process exit code (0 ok, 2 usage error).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace tls::runtime
