#include "runtime/runner.hpp"

#include <chrono>  // host wall clock for progress/ETA only; see allowlist
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>
#include <mutex>

#include "obs/trace.hpp"
#include "runtime/result_cache.hpp"
#include "runtime/thread_pool.hpp"

namespace tls::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Serialized progress/ETA lines; completion order is allowed to show here
/// (it is the one place parallel nondeterminism is visible), results never
/// reorder.
class Progress {
 public:
  Progress(std::size_t total, bool enabled, std::ostream* stream)
      : total_(total),
        enabled_(enabled),
        stream_(stream != nullptr ? stream : &std::cerr),
        start_(Clock::now()) {}

  void tick(const std::string& label, bool cached) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    ++done_;
    double elapsed = seconds_since(start_);
    char line[160];
    if (cached) {
      std::snprintf(line, sizeof(line), "[tls::runtime %zu/%zu] %s (cached)\n",
                    done_, total_, label.c_str());
    } else {
      double eta = done_ > 0
                       ? elapsed / static_cast<double>(done_) *
                             static_cast<double>(total_ - done_)
                       : 0.0;
      std::snprintf(line, sizeof(line),
                    "[tls::runtime %zu/%zu] %s  elapsed %.1fs eta %.1fs\n",
                    done_, total_, label.c_str(), elapsed, eta);
    }
    (*stream_) << line << std::flush;
  }

 private:
  std::size_t total_;
  bool enabled_;
  std::ostream* stream_;
  Clock::time_point start_;
  std::mutex mu_;
  std::size_t done_ = 0;
};

}  // namespace

void RunPlan::add(std::string label, exp::ExperimentConfig config) {
  entries.push_back(Entry{std::move(label), std::move(config)});
}

std::vector<core::PolicyKind> RunPlan::default_policies() {
  return {core::PolicyKind::kFifo, core::PolicyKind::kTlsOne,
          core::PolicyKind::kTlsRR};
}

RunPlan RunPlan::replicated(const exp::ExperimentConfig& base, int replicas) {
  RunPlan plan;
  for (int i = 0; i < replicas; ++i) {
    exp::ExperimentConfig c = base;
    c.seed = base.seed + static_cast<std::uint64_t>(i);
    plan.add("seed" + std::to_string(c.seed), std::move(c));
  }
  return plan;
}

RunPlan RunPlan::policy_comparison(
    const exp::ExperimentConfig& base,
    const std::vector<core::PolicyKind>& policies) {
  RunPlan plan;
  for (core::PolicyKind policy : policies) {
    plan.add(core::to_string(policy), exp::with_policy(base, policy));
  }
  return plan;
}

RunPlan RunPlan::placement_sweep(
    const exp::ExperimentConfig& base, const std::vector<int>& table1_indices,
    const std::vector<core::PolicyKind>& policies) {
  RunPlan plan;
  for (int index : table1_indices) {
    exp::ExperimentConfig c = base;
    c.placement = cluster::table1(index, base.workload.num_jobs);
    for (core::PolicyKind policy : policies) {
      plan.add("p" + std::to_string(index) + "/" + core::to_string(policy),
               exp::with_policy(c, policy));
    }
  }
  return plan;
}

RunPlan RunPlan::batch_sweep(const exp::ExperimentConfig& base,
                             const std::vector<int>& batch_sizes,
                             const std::vector<core::PolicyKind>& policies) {
  RunPlan plan;
  for (int batch : batch_sizes) {
    exp::ExperimentConfig c = base;
    c.workload.local_batch_size = batch;
    for (core::PolicyKind policy : policies) {
      plan.add("b" + std::to_string(batch) + "/" + core::to_string(policy),
               exp::with_policy(c, policy));
    }
  }
  return plan;
}

int default_jobs() {
  const char* env = std::getenv("TLS_JOBS");
  if (env != nullptr && *env != '\0') {
    long v = std::atol(env);
    if (v >= 1) return static_cast<int>(v);
  }
  return ThreadPool::hardware_threads();
}

std::string default_cache_dir() {
  const char* env = std::getenv("TLS_CACHE_DIR");
  return env != nullptr ? env : "";
}

RunSet::RunSet(RunOptions options) : options_(std::move(options)) {}

RunReport RunSet::run(const RunPlan& plan) {
  Clock::time_point t0 = Clock::now();
  const std::size_t n = plan.entries.size();

  RunReport report;
  report.results.resize(n);
  report.labels.reserve(n);
  for (const RunPlan::Entry& e : plan.entries) report.labels.push_back(e.label);

  std::unique_ptr<ResultCache> cache;
  if (!options_.cache_dir.empty()) {
    cache = std::make_unique<ResultCache>(options_.cache_dir);
  }

  // Multi-entry plans derive per-run artifact paths (trace.json ->
  // trace.<label>.json) so parallel runs never share an output file; a
  // single-entry plan keeps the caller's exact paths.
  std::vector<exp::ExperimentConfig> configs;
  configs.reserve(n);
  for (const RunPlan::Entry& e : plan.entries) {
    exp::ExperimentConfig c = e.config;
    if (n > 1 && c.obs.any()) {
      c.obs.trace_path = obs::per_run_path(c.obs.trace_path, e.label);
      c.obs.trace_csv_path = obs::per_run_path(c.obs.trace_csv_path, e.label);
      c.obs.metrics_path = obs::per_run_path(c.obs.metrics_path, e.label);
      c.obs.report_path = obs::per_run_path(c.obs.report_path, e.label);
      c.obs.report_csv_path =
          obs::per_run_path(c.obs.report_csv_path, e.label);
      c.obs.report_json_path =
          obs::per_run_path(c.obs.report_json_path, e.label);
      c.obs.report_html_path =
          obs::per_run_path(c.obs.report_html_path, e.label);
    }
    configs.push_back(std::move(c));
  }

  Progress progress(n, options_.progress, options_.progress_stream);

  // Cache pass: fill hits in place, collect the misses to execute. Runs
  // that emit observability artifacts bypass the cache entirely — a hit
  // would return the result without ever writing the trace/metrics files
  // (the cache key deliberately ignores obs options).
  std::vector<std::size_t> misses;
  misses.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (cache != nullptr && !configs[i].obs.any()) {
      if (std::optional<exp::ExperimentResult> hit =
              cache->load(configs[i])) {
        report.results[i] = std::move(*hit);
        ++report.cache_hits;
        progress.tick(plan.entries[i].label, /*cached=*/true);
        continue;
      }
    }
    misses.push_back(i);
  }

  int jobs = options_.jobs > 0 ? options_.jobs : default_jobs();
  if (jobs < 1) jobs = 1;
  if (static_cast<std::size_t>(jobs) > misses.size() && !misses.empty()) {
    jobs = static_cast<int>(misses.size());
  }
  report.jobs_used = misses.empty() ? 1 : jobs;

  std::mutex state_mu;  // first_error + cache_stores
  std::exception_ptr first_error;
  std::size_t stores = 0;

  // Each worker writes only results[i] for its own i, so result slots need
  // no lock; everything shared is guarded or internally synchronized.
  auto run_one = [&](std::size_t i) {
    const RunPlan::Entry& entry = plan.entries[i];
    try {
      exp::ExperimentResult result = exp::run_experiment(configs[i]);
      if (cache != nullptr && !configs[i].obs.any() &&
          cache->store(configs[i], result)) {
        std::lock_guard<std::mutex> lock(state_mu);
        ++stores;
      }
      report.results[i] = std::move(result);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state_mu);
      if (first_error == nullptr) first_error = std::current_exception();
    }
    progress.tick(entry.label, /*cached=*/false);
  };

  if (report.jobs_used <= 1) {
    for (std::size_t i : misses) run_one(i);
  } else {
    ThreadPool pool(report.jobs_used);
    for (std::size_t i : misses) {
      pool.submit([&run_one, i] { run_one(i); });
    }
    pool.wait_idle();
  }

  if (first_error != nullptr) std::rethrow_exception(first_error);
  report.cache_stores = stores;
  report.wall_s = seconds_since(t0);
  return report;
}

RunReport run_plan(const RunPlan& plan, RunOptions options) {
  return RunSet(std::move(options)).run(plan);
}

}  // namespace tls::runtime
