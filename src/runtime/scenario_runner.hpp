// Parallel execution of scenario plans (the dynamic-cluster analog of
// RunPlan/RunSet). Entries are fully independent scenario::Configs; the
// plan fans across the work-stealing thread pool and results come back
// keyed by entry index, never by completion order, so a parallel plan's
// output is byte-identical to a serial one. Scenarios are not cached:
// unlike ExperimentConfig there is no content-addressed key for an
// arbitrary replayed trace, and a scenario run is the benchmark itself.
#pragma once

#include <string>
#include <vector>

#include "scenario/engine.hpp"

namespace tls::runtime {

struct ScenarioPlan {
  struct Entry {
    std::string label;
    scenario::Config config;
  };
  std::vector<Entry> entries;

  void add(std::string label, scenario::Config config);
  std::size_t size() const { return entries.size(); }
  bool empty() const { return entries.empty(); }

  /// One run of `base` per TensorLights policy (FIFO, TLs-One, TLs-RR by
  /// default — FIFO first so it is the comparison baseline). The trace
  /// seed is shared, so every policy schedules the identical workload.
  static ScenarioPlan policy_comparison(const scenario::Config& base);

  /// `replicas` copies of `base` with simulator seeds base.seed, +1, ...
  /// The trace seed stays fixed: same workload, fresh noise streams.
  static ScenarioPlan replicated(const scenario::Config& base, int replicas);
};

struct ScenarioReport {
  /// results[i] corresponds to plan.entries[i], regardless of completion
  /// order.
  std::vector<scenario::Result> results;
  std::vector<std::string> labels;
  int jobs_used = 1;
};

/// Executes every entry across `jobs` worker threads (0 = default_jobs()
/// from runner.hpp; 1 = inline on the caller's thread), rethrowing the
/// first worker exception after in-flight runs drain.
ScenarioReport run_scenario_plan(const ScenarioPlan& plan, int jobs = 0);

}  // namespace tls::runtime
