// Replicated and comparative experiment drivers, fanned across the
// tls::runtime thread pool. These sit above exp in the include-layer DAG:
// exp defines single experiments; runtime schedules many of them.
#pragma once

#include <vector>

#include "exp/experiment.hpp"

namespace tls::runtime {

/// Runs `replicas` independent repetitions (seeds config.seed, +1, ...).
/// Fanned across the tls::runtime thread pool ($TLS_JOBS / hardware
/// concurrency; $TLS_CACHE_DIR enables the result cache); results are
/// ordered by replica index, byte-identical to a serial loop.
std::vector<exp::ExperimentResult> run_replicated(
    const exp::ExperimentConfig& config, int replicas);

/// Runs `config` under FIFO, TLs-One, and TLs-RR (in that order, FIFO
/// first as the normalization baseline), in parallel via the same pool.
std::vector<exp::ExperimentResult> compare(const exp::ExperimentConfig& config);

}  // namespace tls::runtime
