#include "runtime/replicate.hpp"

#include <stdexcept>
#include <utility>

#include "runtime/runner.hpp"

namespace tls::runtime {

std::vector<exp::ExperimentResult> run_replicated(
    const exp::ExperimentConfig& config, int replicas) {
  if (replicas < 1) throw std::invalid_argument("replicas < 1");
  RunReport report = run_plan(RunPlan::replicated(config, replicas));
  return std::move(report.results);
}

std::vector<exp::ExperimentResult> compare(
    const exp::ExperimentConfig& config) {
  RunReport report = run_plan(RunPlan::policy_comparison(config));
  return std::move(report.results);
}

}  // namespace tls::runtime
