#include "runtime/scenario_runner.hpp"

#include <exception>
#include <mutex>
#include <utility>

#include "obs/trace.hpp"
#include "runtime/runner.hpp"
#include "runtime/thread_pool.hpp"

namespace tls::runtime {

void ScenarioPlan::add(std::string label, scenario::Config config) {
  entries.push_back(Entry{std::move(label), std::move(config)});
}

ScenarioPlan ScenarioPlan::policy_comparison(const scenario::Config& base) {
  ScenarioPlan plan;
  for (core::PolicyKind policy : RunPlan::default_policies()) {
    scenario::Config c = base;
    c.controller.policy = policy;
    plan.add(core::to_string(policy), std::move(c));
  }
  return plan;
}

ScenarioPlan ScenarioPlan::replicated(const scenario::Config& base,
                                      int replicas) {
  ScenarioPlan plan;
  for (int i = 0; i < replicas; ++i) {
    scenario::Config c = base;
    c.seed = base.seed + static_cast<std::uint64_t>(i);
    plan.add("seed" + std::to_string(c.seed), std::move(c));
  }
  return plan;
}

ScenarioReport run_scenario_plan(const ScenarioPlan& plan, int jobs) {
  const std::size_t n = plan.entries.size();
  ScenarioReport report;
  report.results.resize(n);
  report.labels.reserve(n);
  for (const ScenarioPlan::Entry& e : plan.entries) {
    report.labels.push_back(e.label);
  }

  // Multi-entry plans derive per-run metrics paths (metrics.csv ->
  // metrics.<label>.csv) so parallel runs never share an output file.
  std::vector<scenario::Config> configs;
  configs.reserve(n);
  for (const ScenarioPlan::Entry& e : plan.entries) {
    scenario::Config c = e.config;
    if (n > 1 && !c.metrics_path.empty()) {
      c.metrics_path = obs::per_run_path(c.metrics_path, e.label);
    }
    configs.push_back(std::move(c));
  }

  if (jobs <= 0) jobs = default_jobs();
  if (static_cast<std::size_t>(jobs) > n && n > 0) {
    jobs = static_cast<int>(n);
  }
  report.jobs_used = n == 0 ? 1 : jobs;

  std::mutex error_mu;
  std::exception_ptr first_error;

  // Each worker writes only results[i] for its own i; the error slot is
  // the sole shared state.
  auto run_one = [&](std::size_t i) {
    try {
      report.results[i] = scenario::run_scenario(configs[i]);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error == nullptr) first_error = std::current_exception();
    }
  };

  if (report.jobs_used <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    ThreadPool pool(report.jobs_used);
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&run_one, i] { run_one(i); });
    }
    pool.wait_idle();
  }

  if (first_error != nullptr) std::rethrow_exception(first_error);
  return report;
}

}  // namespace tls::runtime
