#include "net/port.hpp"

#include <algorithm>
#include <utility>

#include "net/pfifo_qdisc.hpp"
#include "obs/trace.hpp"
#include "simcore/check.hpp"

namespace tls::net {

EgressPort::EgressPort(sim::Simulator& simulator, Rate rate,
                       TransmitDone on_transmit)
    : sim_(simulator),
      rate_(rate),
      on_transmit_(std::move(on_transmit)),
      qdisc_(std::make_unique<PfifoQdisc>()) {
  TLS_CHECK(rate_ > Rate{0.0}, "egress port rate must be positive, got ", rate_);
  TLS_CHECK(on_transmit_, "egress port with null transmit callback");
}

void EgressPort::submit(Chunk chunk, const FlowSpec& spec) {
  TLS_CHECK(chunk.size >= Bytes{0}, "egress submit of negative-size chunk: ",
            chunk.size);
  chunk.band = classifier_.classify(spec);
  chunk.enqueued_at = sim_.now();
  submitted_bytes_ += chunk.size;
  if (TLS_OBS_ACTIVE(sim_.tracer())) {
    sim_.tracer()->chunk_enqueue(sim_.now(), host_, chunk.job, chunk.band,
                                 static_cast<std::int64_t>(chunk.flow),
                                 chunk.index, chunk.size);
  }
  qdisc_->enqueue(chunk);
  counters_.peak_backlog_bytes = std::max(
      counters_.peak_backlog_bytes, staged_bytes_ + qdisc_->backlog_bytes());
  TLS_DCHECK(submitted_bytes_ == counters_.bytes + in_flight_bytes_ +
                                     staged_bytes_ + qdisc_->backlog_bytes(),
             "egress byte conservation broken after submit: submitted=",
             submitted_bytes_, " transmitted=", counters_.bytes,
             " in_flight=", in_flight_bytes_, " staged=", staged_bytes_,
             " backlog=", qdisc_->backlog_bytes());
  kick();
}

void EgressPort::set_qdisc(std::unique_ptr<Qdisc> qdisc) {
  TLS_CHECK(qdisc, "set_qdisc(nullptr)");
  std::vector<Chunk> backlog;
  Bytes before = staged_bytes_ + qdisc_->backlog_bytes();
  // Abort fast-forward staging: staged chunks were dequeued from the old
  // discipline ahead of the wire, so they re-enter ahead of the drained
  // backlog to preserve service order.
  staged_.append_to(backlog);
  staged_.clear();
  staged_bytes_ = Bytes{0};
  qdisc_->drain(backlog);
  qdisc_ = std::move(qdisc);
  qdisc_->set_obs(sim_.tracer(), host_);
  for (const Chunk& c : backlog) qdisc_->enqueue(c);
  TLS_DCHECK(qdisc_->backlog_bytes() == before,
             "qdisc replacement lost bytes: before=", before, " after=",
             qdisc_->backlog_bytes());
  kick();
}

void EgressPort::maybe_stage() {
  // Flow-level fast-forward: while the discipline's drain order is provably
  // stable under future enqueues and no tracer needs per-chunk dequeue
  // events at their poll instants, pull a batch out of the qdisc in one
  // shot and serve the staging lane without further polls.
  if (sim_.tracer() != nullptr) return;
  if (!qdisc_->fifo_stable() || qdisc_->backlog_chunks() < 2) return;
  Bytes before = staged_bytes_ + qdisc_->backlog_bytes();
  qdisc_->dequeue_batch(sim_.now(), kStageBatch, staged_);
  staged_bytes_ = before - qdisc_->backlog_bytes();
  TLS_DCHECK(staged_bytes_ >= Bytes{0}, "staging lane bytes went negative: ",
             staged_bytes_);
}

void EgressPort::start_transmit(const Chunk& chunk) {
  if (retry_armed_) {
    sim_.cancel(retry_event_);
    retry_armed_ = false;
  }
  busy_ = true;
  if (TLS_OBS_ACTIVE(sim_.tracer())) {
    sim_.tracer()->chunk_dequeue(sim_.now(), host_, chunk.job, chunk.band,
                                 static_cast<std::int64_t>(chunk.flow),
                                 chunk.index, chunk.size,
                                 sim_.now() - chunk.enqueued_at);
  }
  in_flight_bytes_ += chunk.size;
  sim_.schedule_after(transmit_time(chunk.size, rate_),
                      [this, chunk] { finish_transmit(chunk); });
}

void EgressPort::kick() {
  if (busy_) return;
  if (staged_.empty()) maybe_stage();
  if (!staged_.empty()) {
    // Promotion happens exactly where the poll path would have scheduled
    // the transmission, so the schedule() call sequence — and therefore
    // event ordering — is identical to poll-per-chunk.
    ++ff_promotions_;
    Chunk chunk = staged_.take_front();
    staged_bytes_ -= chunk.size;
    start_transmit(chunk);
    return;
  }
  ++ff_polls_;
  DequeueResult r = qdisc_->dequeue(sim_.now());
  switch (r.kind) {
    case DequeueResult::Kind::kChunk:
      start_transmit(r.chunk);
      break;
    case DequeueResult::Kind::kWaitUntil: {
      // Re-arm the poll; a newer enqueue may land earlier, in which case
      // kick() runs again and the earlier of the two polls wins.
      if (retry_armed_) sim_.cancel(retry_event_);
      retry_armed_ = true;
      retry_event_ = sim_.schedule_at(std::max(r.retry_at, sim_.now() + sim::Time{1}),
                                      [this] {
                                        retry_armed_ = false;
                                        kick();
                                      });
      break;
    }
    case DequeueResult::Kind::kIdle:
      break;
  }
}

void EgressPort::set_host(HostId host) {
  host_ = host;
  qdisc_->set_obs(sim_.tracer(), host_);
}

void EgressPort::finish_transmit(const Chunk& chunk) {
  busy_ = false;
  counters_.bytes += chunk.size;
  ++counters_.chunks;
  in_flight_bytes_ -= chunk.size;
  TLS_CHECK(in_flight_bytes_ >= Bytes{0}, "egress in-flight bytes went negative: ",
            in_flight_bytes_);
  TLS_DCHECK(submitted_bytes_ == counters_.bytes + in_flight_bytes_ +
                                     staged_bytes_ + qdisc_->backlog_bytes(),
             "egress byte conservation broken after transmit: submitted=",
             submitted_bytes_, " transmitted=", counters_.bytes,
             " in_flight=", in_flight_bytes_, " staged=", staged_bytes_,
             " backlog=", qdisc_->backlog_bytes());
  on_transmit_(chunk);
  kick();
}

IngressPort::IngressPort(sim::Simulator& simulator, Rate rate,
                         Delivered on_delivered)
    : sim_(simulator), rate_(rate), on_delivered_(std::move(on_delivered)) {
  TLS_CHECK(rate_ > Rate{0.0}, "ingress port rate must be positive, got ", rate_);
  TLS_CHECK(on_delivered_, "ingress port with null delivery callback");
}

void IngressPort::arrive(const Chunk& chunk) {
  TLS_CHECK(chunk.size >= Bytes{0}, "ingress arrival of negative-size chunk: ",
            chunk.size);
  if (TLS_OBS_ACTIVE(sim_.tracer())) {
    sim_.tracer()->ingress_arrive(sim_.now(), host_, chunk.job, chunk.band,
                                  static_cast<std::int64_t>(chunk.flow),
                                  chunk.index, chunk.size);
  }
  queue_.push_back(chunk, /*stamp=*/sim_.now());
  backlog_bytes_ += chunk.size;
  counters_.peak_backlog_bytes =
      std::max(counters_.peak_backlog_bytes, backlog_bytes_);
  if (!busy_) serve_next();
}

void IngressPort::serve_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  sim::Time arrived_at = queue_.front_stamp();
  Chunk chunk = queue_.take_front();
  backlog_bytes_ -= chunk.size;
  TLS_CHECK(backlog_bytes_ >= Bytes{0}, "ingress backlog went negative: ",
            backlog_bytes_);
  sim::Time wait = sim_.now() - arrived_at;
  sim_.schedule_after(transmit_time(chunk.size, rate_),
                      [this, chunk, arrived_at, wait] {
    counters_.bytes += chunk.size;
    ++counters_.chunks;
    if (TLS_OBS_ACTIVE(sim_.tracer())) {
      sim_.tracer()->ingress_deliver(sim_.now(), host_, chunk.job, chunk.band,
                                     static_cast<std::int64_t>(chunk.flow),
                                     chunk.index, chunk.size, wait,
                                     sim_.now() - arrived_at);
    }
    on_delivered_(chunk);
    serve_next();
  });
}

}  // namespace tls::net
