#include "net/port.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "net/pfifo_qdisc.hpp"

namespace tls::net {

EgressPort::EgressPort(sim::Simulator& simulator, Rate rate,
                       TransmitDone on_transmit)
    : sim_(simulator),
      rate_(rate),
      on_transmit_(std::move(on_transmit)),
      qdisc_(std::make_unique<PfifoQdisc>()) {
  assert(rate_ > 0);
  assert(on_transmit_);
}

void EgressPort::submit(Chunk chunk, const FlowSpec& spec) {
  chunk.band = classifier_.classify(spec);
  qdisc_->enqueue(chunk);
  counters_.peak_backlog_bytes =
      std::max(counters_.peak_backlog_bytes, qdisc_->backlog_bytes());
  kick();
}

void EgressPort::set_qdisc(std::unique_ptr<Qdisc> qdisc) {
  assert(qdisc);
  std::vector<Chunk> backlog;
  qdisc_->drain(backlog);
  qdisc_ = std::move(qdisc);
  for (const Chunk& c : backlog) qdisc_->enqueue(c);
  kick();
}

void EgressPort::kick() {
  if (busy_) return;
  DequeueResult r = qdisc_->dequeue(sim_.now());
  switch (r.kind) {
    case DequeueResult::Kind::kChunk: {
      if (retry_armed_) {
        sim_.cancel(retry_event_);
        retry_armed_ = false;
      }
      busy_ = true;
      Chunk chunk = r.chunk;
      sim_.schedule_after(transmit_time(chunk.size, rate_),
                          [this, chunk] { finish_transmit(chunk); });
      break;
    }
    case DequeueResult::Kind::kWaitUntil: {
      // Re-arm the poll; a newer enqueue may land earlier, in which case
      // kick() runs again and the earlier of the two polls wins.
      if (retry_armed_) sim_.cancel(retry_event_);
      retry_armed_ = true;
      retry_event_ = sim_.schedule_at(std::max(r.retry_at, sim_.now() + 1),
                                      [this] {
                                        retry_armed_ = false;
                                        kick();
                                      });
      break;
    }
    case DequeueResult::Kind::kIdle:
      break;
  }
}

void EgressPort::finish_transmit(const Chunk& chunk) {
  busy_ = false;
  counters_.bytes += chunk.size;
  ++counters_.chunks;
  on_transmit_(chunk);
  kick();
}

IngressPort::IngressPort(sim::Simulator& simulator, Rate rate,
                         Delivered on_delivered)
    : sim_(simulator), rate_(rate), on_delivered_(std::move(on_delivered)) {
  assert(rate_ > 0);
  assert(on_delivered_);
}

void IngressPort::arrive(const Chunk& chunk) {
  queue_.push_back(chunk);
  backlog_bytes_ += chunk.size;
  counters_.peak_backlog_bytes =
      std::max(counters_.peak_backlog_bytes, backlog_bytes_);
  if (!busy_) serve_next();
}

void IngressPort::serve_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Chunk chunk = queue_.front();
  queue_.pop_front();
  backlog_bytes_ -= chunk.size;
  sim_.schedule_after(transmit_time(chunk.size, rate_), [this, chunk] {
    counters_.bytes += chunk.size;
    ++counters_.chunks;
    on_delivered_(chunk);
    serve_next();
  });
}

}  // namespace tls::net
