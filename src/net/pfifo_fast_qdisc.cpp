#include "net/pfifo_fast_qdisc.hpp"

#include <sstream>

namespace tls::net {

int PfifoFastQdisc::priomap(FlowKind kind) {
  switch (kind) {
    case FlowKind::kControl: return 0;        // interactive
    case FlowKind::kModelUpdate: return 1;    // best effort
    case FlowKind::kGradientUpdate: return 1; // best effort
    case FlowKind::kBulk: return 2;           // background
  }
  return 1;
}

void PfifoFastQdisc::enqueue(const Chunk& chunk) {
  int band = priomap(chunk.kind);
  bands_[static_cast<std::size_t>(band)].push_back(chunk);
  band_bytes_[static_cast<std::size_t>(band)] += chunk.size;
}

DequeueResult PfifoFastQdisc::dequeue(sim::Time /*now*/) {
  for (int b = 0; b < kBands; ++b) {
    auto& band = bands_[static_cast<std::size_t>(b)];
    if (band.empty()) continue;
    Chunk c = band.front();
    band.pop_front();
    band_bytes_[static_cast<std::size_t>(b)] -= c.size;
    stats_.bytes_sent += c.size;
    ++stats_.chunks_sent;
    return DequeueResult::of(c);
  }
  return DequeueResult::idle();
}

Bytes PfifoFastQdisc::backlog_bytes() const {
  return band_bytes_[0] + band_bytes_[1] + band_bytes_[2];
}

std::size_t PfifoFastQdisc::backlog_chunks() const {
  return bands_[0].size() + bands_[1].size() + bands_[2].size();
}

void PfifoFastQdisc::drain(std::vector<Chunk>& out) {
  for (int b = 0; b < kBands; ++b) {
    auto& band = bands_[static_cast<std::size_t>(b)];
    out.insert(out.end(), band.begin(), band.end());
    band.clear();
    band_bytes_[static_cast<std::size_t>(b)] = 0;
  }
}

std::string PfifoFastQdisc::stats_text() const {
  std::ostringstream os;
  os << "qdisc pfifo_fast bands 3: sent " << stats_.bytes_sent << " bytes "
     << stats_.chunks_sent << " chunks, backlog " << backlog_bytes()
     << " bytes\n";
  for (int b = 0; b < kBands; ++b) {
    os << "  band " << b << ": backlog "
       << band_bytes_[static_cast<std::size_t>(b)] << " bytes\n";
  }
  return os.str();
}

}  // namespace tls::net
