#include "net/pfifo_fast_qdisc.hpp"

#include <sstream>

#include "obs/trace.hpp"

namespace tls::net {

int PfifoFastQdisc::priomap(FlowKind kind) {
  switch (kind) {
    case FlowKind::kControl: return 0;        // interactive
    case FlowKind::kModelUpdate: return 1;    // best effort
    case FlowKind::kGradientUpdate: return 1; // best effort
    case FlowKind::kBulk: return 2;           // background
  }
  return 1;
}

void PfifoFastQdisc::enqueue(const Chunk& chunk) {
  TLS_CHECK(chunk.size >= Bytes{0}, "pfifo_fast enqueue of negative-size chunk: ",
            chunk.size);
  int band = priomap(chunk.kind);
  bands_[static_cast<std::size_t>(band)].push_back(chunk);
  band_bytes_[static_cast<std::size_t>(band)] += chunk.size;
  ledger_.enqueued += chunk.size;
  TLS_DCHECK(ledger_.balanced(backlog_bytes()),
             "pfifo_fast ledger imbalance after enqueue");
}

DequeueResult PfifoFastQdisc::dequeue(sim::Time now) {
  for (int b = 0; b < kBands; ++b) {
    auto& band = bands_[static_cast<std::size_t>(b)];
    if (band.empty()) continue;
    Chunk c = band.take_front();
    if (TLS_OBS_ACTIVE(obs_)) obs_->band_service(now, obs_host_, BandId{b}, c.size);
    band_bytes_[static_cast<std::size_t>(b)] -= c.size;
    TLS_CHECK(band_bytes_[static_cast<std::size_t>(b)] >= Bytes{0},
              "pfifo_fast band ", b, " backlog went negative");
    stats_.bytes_sent += c.size;
    ++stats_.chunks_sent;
    ledger_.dequeued += c.size;
    TLS_DCHECK(ledger_.balanced(backlog_bytes()),
               "pfifo_fast ledger imbalance: in=", ledger_.enqueued, " out=",
               ledger_.dequeued, " drained=", ledger_.drained, " backlog=",
               backlog_bytes());
    return DequeueResult::of(c);
  }
  return DequeueResult::idle();
}

Bytes PfifoFastQdisc::backlog_bytes() const {
  return band_bytes_[0] + band_bytes_[1] + band_bytes_[2];
}

std::size_t PfifoFastQdisc::backlog_chunks() const {
  return bands_[0].size() + bands_[1].size() + bands_[2].size();
}

void PfifoFastQdisc::drain(std::vector<Chunk>& out) {
  for (int b = 0; b < kBands; ++b) {
    auto& band = bands_[static_cast<std::size_t>(b)];
    band.append_to(out);
    band.clear();
    ledger_.drained += band_bytes_[static_cast<std::size_t>(b)];
    band_bytes_[static_cast<std::size_t>(b)] = Bytes{0};
  }
  TLS_DCHECK(ledger_.balanced(backlog_bytes()),
             "pfifo_fast ledger imbalance after drain");
}

std::string PfifoFastQdisc::stats_text() const {
  std::ostringstream os;
  os << "qdisc pfifo_fast bands 3: sent " << stats_.bytes_sent << " bytes "
     << stats_.chunks_sent << " chunks, backlog " << backlog_bytes()
     << " bytes\n";
  for (int b = 0; b < kBands; ++b) {
    os << "  band " << b << ": backlog "
       << band_bytes_[static_cast<std::size_t>(b)] << " bytes\n";
  }
  return os.str();
}

}  // namespace tls::net
