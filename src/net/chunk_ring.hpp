// Struct-of-arrays ring buffer for queued chunks.
//
// Every queueing point in the network substrate (qdisc bands, WDRR flow
// queues, the ingress FIFO) used to hold std::deque<Chunk>: ~64-byte
// records scattered across deque nodes, fully loaded even when a scheduler
// only needs one field to make its decision. ChunkRing stores each Chunk
// field in its own parallel lane inside a single arena allocation, so
//   - enqueue/dequeue touch contiguous memory (one allocation per ring,
//     power-of-two growth, no per-node churn),
//   - hot scheduling peeks (front_size(), front_stamp()) read one lane
//     without materializing the whole record, and
//   - an extra Time lane carries queue-point-local state (the ingress
//     arrival instant) without a second parallel container to keep in sync.
//
// Service order is strict FIFO, identical to the deques this replaces; the
// container has no time, RNG, or iteration-order dependence, so swapping it
// in is byte-identical by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <vector>

#include "net/chunk.hpp"
#include "simcore/check.hpp"

namespace tls::net {

class ChunkRing {
 public:
  ChunkRing() = default;
  ~ChunkRing() { ::operator delete(arena_); }

  ChunkRing(const ChunkRing&) = delete;
  ChunkRing& operator=(const ChunkRing&) = delete;

  ChunkRing(ChunkRing&& o) noexcept { move_from(o); }
  ChunkRing& operator=(ChunkRing&& o) noexcept {
    if (this != &o) {
      ::operator delete(arena_);
      move_from(o);
    }
    return *this;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Appends `c`; `stamp` is an optional queue-point-local time (the
  /// ingress FIFO stores the arrival instant here).
  void push_back(const Chunk& c, sim::Time stamp = sim::Time{}) {
    if (size_ == capacity_) grow();
    std::size_t i = (head_ + size_) & (capacity_ - 1);
    flow_[i] = c.flow;
    size_b_[i] = c.size;
    enqueued_at_[i] = c.enqueued_at;
    stamp_[i] = stamp;
    weight_[i] = c.weight;
    index_[i] = c.index;
    band_[i] = c.band;
    dst_[i] = c.dst;
    job_[i] = c.job;
    last_[i] = c.last ? 1 : 0;
    kind_[i] = static_cast<std::uint8_t>(c.kind);
    ++size_;
  }

  /// Materializes the front chunk.
  Chunk front() const { return at(0); }

  /// Front-field peeks: one lane load, no record materialization.
  Bytes front_size() const {
    TLS_DCHECK(size_ > 0, "front_size() on an empty ChunkRing");
    return size_b_[head_];
  }
  sim::Time front_stamp() const {
    TLS_DCHECK(size_ > 0, "front_stamp() on an empty ChunkRing");
    return stamp_[head_];
  }

  void pop_front() {
    TLS_DCHECK(size_ > 0, "pop_front() on an empty ChunkRing");
    head_ = (head_ + 1) & (capacity_ - 1);
    --size_;
  }

  /// front() + pop_front() in one call.
  Chunk take_front() {
    Chunk c = front();
    pop_front();
    return c;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Appends all queued chunks to `out` in service order (drain support).
  void append_to(std::vector<Chunk>& out) const {
    out.reserve(out.size() + size_);
    for (std::size_t k = 0; k < size_; ++k) out.push_back(at(k));
  }

 private:
  static constexpr std::size_t kInitialCapacity = 16;

  Chunk at(std::size_t k) const {
    TLS_DCHECK(k < size_, "ChunkRing index out of range: ", k);
    std::size_t i = (head_ + k) & (capacity_ - 1);
    Chunk c;
    c.flow = flow_[i];
    c.size = size_b_[i];
    c.enqueued_at = enqueued_at_[i];
    c.weight = weight_[i];
    c.index = index_[i];
    c.band = band_[i];
    c.dst = dst_[i];
    c.job = job_[i];
    c.last = last_[i] != 0;
    c.kind = static_cast<FlowKind>(kind_[i]);
    return c;
  }

  /// Bytes needed for all lanes at `cap` slots; 8-byte lanes lead so every
  /// lane start is naturally aligned.
  static std::size_t arena_bytes(std::size_t cap) {
    return cap * (sizeof(FlowId) + sizeof(Bytes) + 2 * sizeof(sim::Time) +
                  sizeof(double) + sizeof(BandId) + sizeof(HostId) +
                  sizeof(std::int32_t) + sizeof(std::uint32_t) +
                  2 * sizeof(std::uint8_t));
  }

  /// Points the lane pointers into `arena` laid out for `cap` slots.
  void bind_lanes(std::byte* arena, std::size_t cap) {
    std::byte* p = arena;
    auto lane = [&p](std::size_t bytes) {
      std::byte* s = p;
      p += bytes;
      return s;
    };
    flow_ = reinterpret_cast<FlowId*>(lane(cap * sizeof(FlowId)));
    size_b_ = reinterpret_cast<Bytes*>(lane(cap * sizeof(Bytes)));
    enqueued_at_ = reinterpret_cast<sim::Time*>(lane(cap * sizeof(sim::Time)));
    stamp_ = reinterpret_cast<sim::Time*>(lane(cap * sizeof(sim::Time)));
    weight_ = reinterpret_cast<double*>(lane(cap * sizeof(double)));
    index_ = reinterpret_cast<std::uint32_t*>(
        lane(cap * sizeof(std::uint32_t)));
    band_ = reinterpret_cast<BandId*>(lane(cap * sizeof(BandId)));
    dst_ = reinterpret_cast<HostId*>(lane(cap * sizeof(HostId)));
    job_ = reinterpret_cast<std::int32_t*>(lane(cap * sizeof(std::int32_t)));
    last_ = reinterpret_cast<std::uint8_t*>(lane(cap * sizeof(std::uint8_t)));
    kind_ = reinterpret_cast<std::uint8_t*>(lane(cap * sizeof(std::uint8_t)));
  }

  void grow() {
    std::size_t new_cap = capacity_ == 0 ? kInitialCapacity : capacity_ * 2;
    std::byte* arena =
        static_cast<std::byte*>(::operator new(arena_bytes(new_cap)));
    ChunkRing old;
    old.arena_ = arena_;
    old.capacity_ = capacity_;
    old.head_ = head_;
    old.size_ = size_;
    if (capacity_ != 0) old.bind_lanes(arena_, capacity_);
    arena_ = arena;
    capacity_ = new_cap;
    head_ = 0;
    size_ = 0;
    bind_lanes(arena, new_cap);
    for (std::size_t k = 0; k < old.size_; ++k) push_back(old.at(k));
    // Restore the stamp lane, which at() does not carry.
    for (std::size_t k = 0; k < old.size_; ++k) {
      stamp_[k] = old.stamp_[(old.head_ + k) & (old.capacity_ - 1)];
    }
    // old's destructor frees the previous arena.
  }

  void move_from(ChunkRing& o) {
    arena_ = o.arena_;
    capacity_ = o.capacity_;
    head_ = o.head_;
    size_ = o.size_;
    flow_ = o.flow_;
    size_b_ = o.size_b_;
    enqueued_at_ = o.enqueued_at_;
    stamp_ = o.stamp_;
    weight_ = o.weight_;
    index_ = o.index_;
    band_ = o.band_;
    dst_ = o.dst_;
    job_ = o.job_;
    last_ = o.last_;
    kind_ = o.kind_;
    o.arena_ = nullptr;
    o.capacity_ = 0;
    o.head_ = 0;
    o.size_ = 0;
  }

  std::byte* arena_ = nullptr;
  std::size_t capacity_ = 0;  // power of two (or 0 before first push)
  std::size_t head_ = 0;
  std::size_t size_ = 0;

  // SoA lanes inside arena_ (8-byte lanes first for natural alignment).
  FlowId* flow_ = nullptr;
  Bytes* size_b_ = nullptr;
  sim::Time* enqueued_at_ = nullptr;
  sim::Time* stamp_ = nullptr;
  double* weight_ = nullptr;
  std::uint32_t* index_ = nullptr;
  BandId* band_ = nullptr;
  HostId* dst_ = nullptr;
  std::int32_t* job_ = nullptr;
  std::uint8_t* last_ = nullptr;
  std::uint8_t* kind_ = nullptr;
};

}  // namespace tls::net
