// pfifo: the Linux default single-band FIFO queue.
//
// Chunks are served strictly in arrival order regardless of flow or band.
// Combined with the transport's delivery-clocked admission window this
// approximates how concurrent TCP flows interleave through the default
// qdisc. Lossless (no tail drop); see DESIGN.md §4.
#pragma once

#include "net/chunk_ring.hpp"
#include "net/qdisc.hpp"

namespace tls::net {

class PfifoQdisc final : public Qdisc {
 public:
  PfifoQdisc() = default;

  void enqueue(const Chunk& chunk) override;
  DequeueResult dequeue(sim::Time now) override;
  Bytes backlog_bytes() const override { return backlog_bytes_; }
  std::size_t backlog_chunks() const override { return queue_.size(); }
  std::string kind() const override { return "pfifo"; }
  void drain(std::vector<Chunk>& out) override;
  const QdiscStats& stats() const override { return stats_; }
  std::string stats_text() const override;

  /// Strict FIFO: nothing enqueued later can displace the current head, so
  /// the port may batch-stage the backlog.
  bool fifo_stable() const override { return true; }
  std::size_t dequeue_batch(sim::Time now, std::size_t max_chunks,
                            ChunkRing& out) override;

 private:
  ChunkRing queue_;
  Bytes backlog_bytes_{};
  QdiscStats stats_;
  ByteLedger ledger_;
};

}  // namespace tls::net
