// Host NIC ports: the egress side schedules through a pluggable qdisc, the
// ingress side is a plain FIFO drain (receive fan-in contention).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/chunk_ring.hpp"
#include "net/classifier.hpp"
#include "net/qdisc.hpp"
#include "simcore/simulator.hpp"

namespace tls::net {

/// Cumulative byte/chunk counters for one direction of a port; the ifstat
/// analog reads these.
struct PortCounters {
  Bytes bytes{};
  std::uint64_t chunks = 0;
  Bytes peak_backlog_bytes{};
};

/// Transmit side of a host NIC. Owns the classifier and qdisc; serializes
/// one chunk at a time at the line rate and hands completed chunks to the
/// fabric for delivery.
class EgressPort {
 public:
  using TransmitDone = std::function<void(const Chunk&)>;

  EgressPort(sim::Simulator& simulator, Rate rate, TransmitDone on_transmit);

  EgressPort(const EgressPort&) = delete;
  EgressPort& operator=(const EgressPort&) = delete;

  /// Classifies `spec`, stamps the chunk's band, enqueues, and kicks the
  /// link if idle.
  void submit(Chunk chunk, const FlowSpec& spec);

  /// Replaces the queueing discipline. Backlogged chunks are migrated into
  /// the new qdisc in the old one's service order (Linux would drop them;
  /// our transfers are lossless). Migrated chunks keep their band stamp —
  /// the new discipline clamps or default-routes unknown bands.
  void set_qdisc(std::unique_ptr<Qdisc> qdisc);

  Qdisc& qdisc() { return *qdisc_; }
  const Qdisc& qdisc() const { return *qdisc_; }
  Classifier& classifier() { return classifier_; }
  const Classifier& classifier() const { return classifier_; }

  Rate rate() const { return rate_; }
  bool busy() const { return busy_; }
  const PortCounters& counters() const { return counters_; }

  /// Re-polls the qdisc if the link is idle; safe to call any time (the tc
  /// applier calls this after reconfiguration).
  void kick();

  /// Declares which host this port serves (trace track identity) and
  /// propagates the simulator's tracer into the installed qdisc. Called by
  /// the Fabric at wiring time; a port left unwired traces as host -1.
  void set_host(HostId host);
  HostId host() const { return host_; }

  /// Fast-forward telemetry: chunks served from the staging lane without a
  /// qdisc poll, vs direct dequeue polls (including idle ones). The hit
  /// rate promotions/(promotions+polls) measures how much of the drain the
  /// port fast-forwarded.
  std::uint64_t ff_promotions() const { return ff_promotions_; }
  std::uint64_t ff_polls() const { return ff_polls_; }
  /// Bytes parked in the staging lane (already dequeued from the qdisc,
  /// not yet on the wire).
  Bytes staged_bytes() const { return staged_bytes_; }

 private:
  // Chunks batch-staged per qdisc pull; bounds how far ahead of the wire
  // the port dequeues, so a qdisc swap never migrates a long staged tail.
  static constexpr std::size_t kStageBatch = 64;

  void finish_transmit(const Chunk& chunk);
  /// Puts `chunk` on the wire now. Single point through which both the
  /// staged fast path and the poll path start a transmission.
  void start_transmit(const Chunk& chunk);
  /// Refills the staging lane from the qdisc when fast-forwarding is safe:
  /// the discipline is fifo-stable and no tracer needs per-chunk dequeue
  /// events at their poll instants.
  void maybe_stage();

  sim::Simulator& sim_;
  HostId host_ = kNoHost;
  Rate rate_;
  TransmitDone on_transmit_;
  std::unique_ptr<Qdisc> qdisc_;
  Classifier classifier_;
  bool busy_ = false;
  bool retry_armed_ = false;
  sim::EventId retry_event_{};
  PortCounters counters_;
  // Fast-forward staging lane: chunks already dequeued from a fifo-stable
  // qdisc in one batch, served in order without further polls. Promotion
  // happens inside kick() exactly where the poll path would schedule, so
  // the event schedule order is identical to poll-per-chunk.
  ChunkRing staged_;
  Bytes staged_bytes_{};
  std::uint64_t ff_promotions_ = 0;
  std::uint64_t ff_polls_ = 0;
  // Byte-conservation bookkeeping: everything submitted is either already
  // transmitted (counters_.bytes), in flight on the wire, staged, or still
  // queued in the qdisc.
  Bytes submitted_bytes_{};
  Bytes in_flight_bytes_{};
};

/// Receive side of a host NIC: FIFO service at line rate, modeling fan-in
/// serialization at the receiver.
class IngressPort {
 public:
  using Delivered = std::function<void(const Chunk&)>;

  IngressPort(sim::Simulator& simulator, Rate rate, Delivered on_delivered);

  IngressPort(const IngressPort&) = delete;
  IngressPort& operator=(const IngressPort&) = delete;

  /// Chunk arrives from the switch; queued behind any chunk in service.
  void arrive(const Chunk& chunk);

  Rate rate() const { return rate_; }
  Bytes backlog_bytes() const { return backlog_bytes_; }
  const PortCounters& counters() const { return counters_; }

  /// Declares which host this port serves (trace track identity). Called
  /// by the Fabric at wiring time; a port left unwired traces as host -1.
  void set_host(HostId host) { host_ = host; }
  HostId host() const { return host_; }

 private:
  void serve_next();

  sim::Simulator& sim_;
  HostId host_ = kNoHost;
  Rate rate_;
  Delivered on_delivered_;
  /// FIFO of waiting chunks; the ring's stamp lane records each chunk's
  /// arrival instant (fan-in wait and residence trace fields derive from
  /// it), replacing a second parallel deque.
  ChunkRing queue_;
  Bytes backlog_bytes_{};
  bool busy_ = false;
  PortCounters counters_;
};

}  // namespace tls::net
