#include "net/pfifo_qdisc.hpp"

#include <sstream>

namespace tls::net {

void PfifoQdisc::enqueue(const Chunk& chunk) {
  queue_.push_back(chunk);
  backlog_bytes_ += chunk.size;
}

void PfifoQdisc::drain(std::vector<Chunk>& out) {
  out.insert(out.end(), queue_.begin(), queue_.end());
  queue_.clear();
  backlog_bytes_ = 0;
}

DequeueResult PfifoQdisc::dequeue(sim::Time /*now*/) {
  if (queue_.empty()) return DequeueResult::idle();
  Chunk c = queue_.front();
  queue_.pop_front();
  backlog_bytes_ -= c.size;
  stats_.bytes_sent += c.size;
  ++stats_.chunks_sent;
  return DequeueResult::of(c);
}

std::string PfifoQdisc::stats_text() const {
  std::ostringstream os;
  os << "qdisc pfifo: sent " << stats_.bytes_sent << " bytes "
     << stats_.chunks_sent << " chunks, backlog " << backlog_bytes_
     << " bytes " << queue_.size() << " chunks\n";
  return os.str();
}

}  // namespace tls::net
