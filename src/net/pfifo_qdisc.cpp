#include "net/pfifo_qdisc.hpp"

#include <sstream>

#include "obs/trace.hpp"

namespace tls::net {

void PfifoQdisc::enqueue(const Chunk& chunk) {
  TLS_CHECK(chunk.size >= Bytes{0}, "pfifo enqueue of negative-size chunk: ",
            chunk.size);
  queue_.push_back(chunk);
  backlog_bytes_ += chunk.size;
  ledger_.enqueued += chunk.size;
  TLS_DCHECK(ledger_.balanced(backlog_bytes_), "pfifo ledger imbalance: in=",
             ledger_.enqueued, " out=", ledger_.dequeued, " drained=",
             ledger_.drained, " backlog=", backlog_bytes_);
}

void PfifoQdisc::drain(std::vector<Chunk>& out) {
  queue_.append_to(out);
  queue_.clear();
  ledger_.drained += backlog_bytes_;
  backlog_bytes_ = Bytes{0};
  TLS_DCHECK(ledger_.balanced(backlog_bytes_), "pfifo ledger imbalance after drain");
}

DequeueResult PfifoQdisc::dequeue(sim::Time now) {
  if (queue_.empty()) return DequeueResult::idle();
  Chunk c = queue_.take_front();
  if (TLS_OBS_ACTIVE(obs_)) obs_->band_service(now, obs_host_, BandId{0}, c.size);
  backlog_bytes_ -= c.size;
  TLS_CHECK(backlog_bytes_ >= Bytes{0}, "pfifo backlog went negative: ",
            backlog_bytes_);
  stats_.bytes_sent += c.size;
  ++stats_.chunks_sent;
  ledger_.dequeued += c.size;
  TLS_DCHECK(ledger_.balanced(backlog_bytes_), "pfifo ledger imbalance: in=",
             ledger_.enqueued, " out=", ledger_.dequeued, " drained=",
             ledger_.drained, " backlog=", backlog_bytes_);
  return DequeueResult::of(c);
}

std::size_t PfifoQdisc::dequeue_batch(sim::Time now, std::size_t max_chunks,
                                      ChunkRing& out) {
  std::size_t n = 0;
  while (n < max_chunks && !queue_.empty()) {
    Chunk c = queue_.take_front();
    if (TLS_OBS_ACTIVE(obs_)) obs_->band_service(now, obs_host_, BandId{0}, c.size);
    backlog_bytes_ -= c.size;
    stats_.bytes_sent += c.size;
    ++stats_.chunks_sent;
    ledger_.dequeued += c.size;
    out.push_back(c);
    ++n;
  }
  TLS_CHECK(backlog_bytes_ >= Bytes{0}, "pfifo backlog went negative: ",
            backlog_bytes_);
  TLS_DCHECK(ledger_.balanced(backlog_bytes_),
             "pfifo ledger imbalance after batch dequeue: in=",
             ledger_.enqueued, " out=", ledger_.dequeued, " drained=",
             ledger_.drained, " backlog=", backlog_bytes_);
  return n;
}

std::string PfifoQdisc::stats_text() const {
  std::ostringstream os;
  os << "qdisc pfifo: sent " << stats_.bytes_sent << " bytes "
     << stats_.chunks_sent << " chunks, backlog " << backlog_bytes_
     << " bytes " << queue_.size() << " chunks\n";
  return os.str();
}

}  // namespace tls::net
