#include "net/tbf_qdisc.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

#include "obs/trace.hpp"

namespace tls::net {

TbfQdisc::TbfQdisc(const TbfConfig& config)
    : config_(config), tokens_(to_double(config.burst)) {
  if (config_.rate <= Rate{0.0}) throw std::invalid_argument("tbf rate <= 0");
  if (config_.burst <= Bytes{0}) throw std::invalid_argument("tbf burst <= 0");
}

void TbfQdisc::enqueue(const Chunk& chunk) {
  TLS_CHECK(chunk.size >= Bytes{0}, "tbf enqueue of negative-size chunk: ",
            chunk.size);
  queue_.push_back(chunk);
  backlog_bytes_ += chunk.size;
  ledger_.enqueued += chunk.size;
  TLS_DCHECK(ledger_.balanced(backlog_bytes_),
             "tbf ledger imbalance after enqueue");
}

DequeueResult TbfQdisc::dequeue(sim::Time now) {
  if (queue_.empty()) return DequeueResult::idle();
  TLS_CHECK(now >= last_refill_, "tbf clock went backwards: now=", now,
            " last_refill=", last_refill_);
  double dt = sim::to_seconds(now - last_refill_);
  if (dt > 0) {
    tokens_ = std::min(to_double(config_.burst),
                       tokens_ + bytes_in(config_.rate, dt));
    last_refill_ = now;
  }
  if (tokens_ < 0) {
    ++stats_.overlimits;
    sim::Time wait = sim::from_seconds(seconds_for(-tokens_, config_.rate));
    sim::Time retry = now + std::max(wait, sim::Time{1});
    if (TLS_OBS_ACTIVE(obs_)) obs_->overlimit(now, obs_host_, retry);
    return DequeueResult::wait_until(retry);
  }
  Chunk c = queue_.take_front();
  backlog_bytes_ -= c.size;
  TLS_CHECK(backlog_bytes_ >= Bytes{0}, "tbf backlog went negative: ",
            backlog_bytes_);
  tokens_ -= to_double(c.size);
  stats_.bytes_sent += c.size;
  ++stats_.chunks_sent;
  ledger_.dequeued += c.size;
  TLS_DCHECK(ledger_.balanced(backlog_bytes_), "tbf ledger imbalance: in=",
             ledger_.enqueued, " out=", ledger_.dequeued, " drained=",
             ledger_.drained, " backlog=", backlog_bytes_);
  return DequeueResult::of(c);
}

void TbfQdisc::drain(std::vector<Chunk>& out) {
  queue_.append_to(out);
  queue_.clear();
  ledger_.drained += backlog_bytes_;
  backlog_bytes_ = Bytes{0};
  TLS_DCHECK(ledger_.balanced(backlog_bytes_),
             "tbf ledger imbalance after drain");
}

std::string TbfQdisc::stats_text() const {
  std::ostringstream os;
  os << "qdisc tbf rate " << config_.rate / mbps(1) << "mbit: sent "
     << stats_.bytes_sent << " bytes " << stats_.chunks_sent
     << " chunks, overlimits " << stats_.overlimits << ", backlog "
     << backlog_bytes_ << " bytes\n";
  return os.str();
}

}  // namespace tls::net
