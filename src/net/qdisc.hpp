// Queueing-discipline interface for the simulated egress NIC.
//
// The EgressPort polls its qdisc whenever the link goes idle. A qdisc can
// answer with a chunk to transmit, with "nothing can be sent before time T"
// (rate-limited disciplines such as htb), or with "empty".
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "net/chunk.hpp"
#include "simcore/check.hpp"
#include "simcore/time.hpp"

namespace tls::obs {
class Tracer;
}  // namespace tls::obs

namespace tls::net {

class ChunkRing;

/// Cumulative service counters of a qdisc (or one of its classes/bands),
/// the `tc -s` statistics analog.
struct QdiscStats {
  Bytes bytes_sent{};
  std::uint64_t chunks_sent = 0;
  /// htb only: sends at assured rate (green) vs borrowed (yellow).
  std::uint64_t green_sends = 0;
  std::uint64_t yellow_sends = 0;
  /// Rate-limited stalls reported to the port (kWaitUntil results).
  std::uint64_t overlimits = 0;
};

/// Byte-conservation ledger for qdisc implementations. The disciplines here
/// are lossless, so at any instant
///   enqueued == dequeued + drained + backlog.
/// Implementations update the ledger on every chunk movement (two integer
/// additions on the hot path) and audit the balance with TLS_DCHECK, so a
/// chunk silently lost or double-counted by a refactor aborts Debug and
/// sanitizer runs at the first operation that breaks the books.
struct ByteLedger {
  Bytes enqueued{};
  Bytes dequeued{};
  Bytes drained{};

  bool balanced(Bytes backlog) const {
    return backlog >= Bytes{0} && enqueued == dequeued + drained + backlog;
  }
};

/// Result of a dequeue attempt.
struct DequeueResult {
  enum class Kind { kChunk, kWaitUntil, kIdle };
  Kind kind = Kind::kIdle;
  Chunk chunk{};
  sim::Time retry_at{};

  static DequeueResult idle() { return {}; }
  static DequeueResult wait_until(sim::Time t) {
    DequeueResult r;
    r.kind = Kind::kWaitUntil;
    r.retry_at = t;
    return r;
  }
  static DequeueResult of(const Chunk& c) {
    DequeueResult r;
    r.kind = Kind::kChunk;
    r.chunk = c;
    return r;
  }
};

/// Abstract egress queueing discipline.
///
/// Disciplines are lossless: the flow-transport admission window bounds the
/// backlog instead of tail-drop + retransmission (see DESIGN.md §4).
class Qdisc {
 public:
  virtual ~Qdisc() = default;

  /// Adds a chunk. `chunk.band` has already been set by the classifier.
  virtual void enqueue(const Chunk& chunk) = 0;

  /// Attempts to pick the next chunk to put on the wire at time `now`.
  virtual DequeueResult dequeue(sim::Time now) = 0;

  virtual Bytes backlog_bytes() const = 0;
  virtual std::size_t backlog_chunks() const = 0;

  /// Removes all queued chunks in service order, appending them to `out`.
  /// Used to migrate backlog when the root qdisc is replaced (Linux drops
  /// the backlog on `tc qdisc replace`; a lossless simulation migrates).
  virtual void drain(std::vector<Chunk>& out) = 0;

  /// Whole-qdisc service counters (`tc -s qdisc show` analog).
  virtual const QdiscStats& stats() const = 0;

  /// Human-readable statistics dump, one line per class/band where the
  /// discipline has them.
  virtual std::string stats_text() const = 0;

  /// Discipline name for introspection ("pfifo", "prio", "htb").
  virtual std::string kind() const = 0;

  /// True when the discipline's service order is provably stable under
  /// future enqueues: the chunks it would dequeue next cannot be reordered
  /// or delayed by anything enqueued later (strict FIFO, no rate limiting).
  /// Only such disciplines are eligible for the EgressPort's fast-forward
  /// staging lane; classful or shaped disciplines must stay poll-per-chunk.
  virtual bool fifo_stable() const { return false; }

  /// Dequeues up to `max_chunks` chunks in service order into `out`,
  /// updating stats and the ledger exactly as the equivalent sequence of
  /// dequeue() calls would. Returns the number of chunks moved. Only
  /// meaningful when fifo_stable(); the default does nothing.
  virtual std::size_t dequeue_batch(sim::Time /*now*/,
                                    std::size_t /*max_chunks*/,
                                    ChunkRing& /*out*/) {
    return 0;
  }

  bool empty() const { return backlog_chunks() == 0; }

  /// Attaches the observability sink and the host this qdisc serves.
  /// Implementations emit discipline-level events (band service, htb
  /// green/yellow, overlimit) through `obs_` when non-null; the EgressPort
  /// propagates this on installation and qdisc replacement.
  void set_obs(obs::Tracer* tracer, HostId host) {
    obs_ = tracer;
    obs_host_ = host;
  }

 protected:
  obs::Tracer* obs_ = nullptr;
  HostId obs_host_ = kNoHost;
};

}  // namespace tls::net
