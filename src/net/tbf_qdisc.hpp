// tbf: token bucket filter — a single rate-shaped FIFO, the classic tc
// building block for capping a machine's egress (e.g. fencing off a
// fraction of the NIC for non-DL tenants). Tokens accrue at `rate` up to
// `burst`; a chunk may leave while the bucket is non-negative and
// overdraws it by its size, matching the htb leaf semantics.
#pragma once

#include "net/chunk_ring.hpp"
#include "net/qdisc.hpp"

namespace tls::net {

struct TbfConfig {
  Rate rate = mbps(100);
  Bytes burst = 64 * kKiB;
};

class TbfQdisc final : public Qdisc {
 public:
  explicit TbfQdisc(const TbfConfig& config);

  void enqueue(const Chunk& chunk) override;
  DequeueResult dequeue(sim::Time now) override;
  Bytes backlog_bytes() const override { return backlog_bytes_; }
  std::size_t backlog_chunks() const override { return queue_.size(); }
  std::string kind() const override { return "tbf"; }
  void drain(std::vector<Chunk>& out) override;
  const QdiscStats& stats() const override { return stats_; }
  std::string stats_text() const override;

  const TbfConfig& config() const { return config_; }

 private:
  TbfConfig config_;
  ChunkRing queue_;
  Bytes backlog_bytes_{};
  double tokens_;
  sim::Time last_refill_{};
  QdiscStats stats_;
  ByteLedger ledger_;
};

}  // namespace tls::net
