// Basic network quantities and conversions.
//
// Every quantity here is a strong type (simcore/strong.hpp): byte counts,
// rates, host indices, and band indices do not mix with each other, with
// sim::Time, or with bare integers. Construction from a raw value is
// explicit; arithmetic is homogeneous; and the blessed unit-crossing
// operations live in this header (transmit_time, to_double, gbps/mbps) so
// everything else can stay cast-free. Uses of `.raw()` outside this header
// and simcore/time.hpp are flagged by the tls_lint `unit-escape` rule.
#pragma once

#include <cstdint>

#include "simcore/check.hpp"
#include "simcore/strong.hpp"
#include "simcore/time.hpp"

namespace tls::net {

/// Index of a host in the cluster (dense, 0-based; -1 = no host).
class HostId : public sim::StrongOrdinal<HostId, std::int32_t> {
 public:
  using StrongOrdinal::StrongOrdinal;
};

/// Priority band index inside a qdisc (0 = highest priority; -1 = none).
class BandId : public sim::StrongOrdinal<BandId, std::int32_t> {
 public:
  using StrongOrdinal::StrongOrdinal;
};

/// Sentinels for "no such host/band" (unwired ports, background traffic).
inline constexpr HostId kNoHost{-1};
inline constexpr BandId kNoBand{-1};

/// Byte counts and sizes.
class Bytes : public sim::StrongQuantity<Bytes, std::int64_t> {
 public:
  using StrongQuantity::StrongQuantity;
};

/// Unique id of an in-flight transfer. Deliberately a bare alias: flow ids
/// are opaque tickets that never participate in arithmetic.
using FlowId = std::uint64_t;

inline constexpr Bytes kKiB{1024};
inline constexpr Bytes kMiB{1024 * 1024};

/// Link / class rates in bytes per second. Checked on construction
/// (non-negative, finite) and strongly typed against Bytes and Time;
/// rate arithmetic that crosses dimensions (rate * seconds, ratio of
/// rates) deliberately yields plain doubles, because token-bucket credit
/// and utilization math are inherently floating point.
class Rate {
 public:
  constexpr Rate() = default;
  constexpr explicit Rate(double bytes_per_sec) : v_(bytes_per_sec) {
    if (std::is_constant_evaluated()) {
      if (!(v_ >= 0.0)) {
        throw "negative rate";  // forces a constant-evaluation error
      }
    } else {
      TLS_CHECK(v_ >= 0.0 && v_ - v_ == 0.0,
                "rate must be finite and non-negative, got ", v_);
    }
  }

  /// Escape hatch; same lint policy as StrongQuantity::raw().
  constexpr double raw() const { return v_; }

  friend constexpr Rate operator+(Rate a, Rate b) { return Rate{a.v_ + b.v_}; }
  friend constexpr Rate operator-(Rate a, Rate b) { return Rate{a.v_ - b.v_}; }

  /// Scaling by a dimensionless factor keeps the unit.
  friend constexpr Rate operator*(Rate a, double k) { return Rate{a.v_ * k}; }
  friend constexpr Rate operator*(double k, Rate a) { return Rate{k * a.v_}; }

  /// Ratio of two rates is dimensionless.
  friend constexpr double operator/(Rate a, Rate b) { return a.v_ / b.v_; }

  friend constexpr bool operator==(Rate a, Rate b) { return a.v_ == b.v_; }
  friend constexpr auto operator<=>(Rate a, Rate b) { return a.v_ <=> b.v_; }

  friend std::ostream& operator<<(std::ostream& os, Rate a) {
    return os << a.v_;
  }

 private:
  double v_ = 0.0;
};

/// Bytes transferred in `seconds` at `rate`, as a (fractional) byte count —
/// the token-bucket refill quantity.
constexpr double bytes_in(Rate rate, double seconds) {
  return rate.raw() * seconds;
}

/// Seconds needed to move `amount` (fractional) bytes at `rate`.
constexpr double seconds_for(double amount, Rate rate) {
  return amount / rate.raw();
}

/// Converts gigabits/second (link spec convention) to bytes/second.
constexpr Rate gbps(double g) { return Rate{g * 1e9 / 8.0}; }

/// Converts megabits/second to bytes/second.
constexpr Rate mbps(double m) { return Rate{m * 1e6 / 8.0}; }

/// A rate as bits/second, for tc-style display formatting.
constexpr double bits_per_sec(Rate rate) { return rate.raw() * 8.0; }

/// A byte count as a double, for throughput/utilization math.
constexpr double to_double(Bytes bytes) {
  return static_cast<double>(bytes.raw());
}

/// A rate as bytes/second, for comparisons against externally computed
/// throughput numbers.
constexpr double to_double(Rate rate) { return rate.raw(); }

/// A whole number of bytes as a Bytes; the named counterpart of the
/// explicit constructor for parsed/serialized integers.
constexpr Bytes from_bytes(std::int64_t n) { return Bytes{n}; }

/// Serialization delay of `bytes` at `rate`, rounded up to >= 1 ns so a
/// transmission always advances simulated time.
inline sim::Time transmit_time(Bytes bytes, Rate rate) {
  TLS_DCHECK(bytes >= Bytes{0}, "transmit_time of negative size ", bytes);
  TLS_DCHECK(rate > Rate{0}, "transmit_time at non-positive rate ", rate);
  double s = static_cast<double>(bytes.raw()) / rate.raw();
  sim::Time t = sim::from_seconds(s);
  return t > sim::Time{0} ? t : sim::Time{1};
}

}  // namespace tls::net
