// Basic network quantities and conversions.
#pragma once

#include <cassert>
#include <cstdint>

#include "simcore/time.hpp"

namespace tls::net {

/// Index of a host in the cluster (dense, 0-based).
using HostId = std::int32_t;

/// Byte counts and sizes.
using Bytes = std::int64_t;

/// Link / class rates in bytes per second.
using Rate = double;

/// Unique id of an in-flight transfer.
using FlowId = std::uint64_t;

/// Priority band index inside a qdisc (0 = highest priority).
using BandId = std::int32_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * 1024;

/// Converts gigabits/second (link spec convention) to bytes/second.
constexpr Rate gbps(double g) { return g * 1e9 / 8.0; }

/// Converts megabits/second to bytes/second.
constexpr Rate mbps(double m) { return m * 1e6 / 8.0; }

/// Serialization delay of `bytes` at `rate`, rounded up to >= 1 ns so a
/// transmission always advances simulated time.
inline sim::Time transmit_time(Bytes bytes, Rate rate) {
  assert(bytes >= 0);
  assert(rate > 0);
  double s = static_cast<double>(bytes) / rate;
  sim::Time t = sim::from_seconds(s);
  return t > 0 ? t : 1;
}

}  // namespace tls::net
