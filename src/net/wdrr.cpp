#include "net/wdrr.hpp"

#include <algorithm>

#include "simcore/check.hpp"

namespace tls::net {

WdrrBand::WdrrBand(Bytes quantum) : quantum_(quantum) {
  TLS_CHECK(quantum_ > Bytes{0}, "wdrr quantum must be positive, got ", quantum_);
}

void WdrrBand::enqueue(const Chunk& chunk) {
  TLS_CHECK(chunk.size >= Bytes{0}, "wdrr enqueue of negative-size chunk: ",
            chunk.size);
  auto [it, inserted] = flows_.try_emplace(chunk.flow);
  FlowQueue& fq = it->second;
  if (inserted || fq.chunks.empty()) {
    fq.weight = std::max(chunk.weight, kMinWeight);
  }
  fq.chunks.push_back(chunk);
  backlog_bytes_ += chunk.size;
  ++backlog_chunks_;
  if (!fq.in_round) {
    fq.in_round = true;
    fq.deficit = Bytes{0};
    active_.push_back(chunk.flow);
  }
}

std::optional<Chunk> WdrrBand::dequeue() {
  if (backlog_chunks_ == 0) return std::nullopt;
  // Each iteration either serves a chunk or tops up one flow's deficit and
  // rotates it; with weight >= kMinWeight a flow needs at most
  // ceil(chunk/quantum/kMinWeight) top-ups, so this terminates quickly.
  for (;;) {
    TLS_CHECK(!active_.empty(),
              "wdrr: backlogged band with empty active list (",
              backlog_chunks_, " chunks unreachable)");
    FlowId fid = active_.front();
    auto it = flows_.find(fid);
    TLS_CHECK(it != flows_.end(), "wdrr: active flow ", fid,
              " missing from flow table");
    FlowQueue& fq = it->second;
    TLS_CHECK(!fq.chunks.empty(), "wdrr: active flow ", fid,
              " has an empty queue");
    // One-lane peek: the DRR decision needs only the head chunk's size.
    const Bytes head_size = fq.chunks.front_size();
    if (fq.deficit < head_size) {
      fq.deficit +=
          Bytes{static_cast<std::int64_t>(to_double(quantum_) * fq.weight)};
      active_.pop_front();
      active_.push_back(fid);
      continue;
    }
    Chunk served = fq.chunks.take_front();
    fq.deficit -= served.size;
    backlog_bytes_ -= served.size;
    --backlog_chunks_;
    TLS_CHECK(backlog_bytes_ >= Bytes{0}, "wdrr backlog went negative: ",
              backlog_bytes_);
    if (fq.chunks.empty()) {
      fq.in_round = false;
      fq.deficit = Bytes{0};
      active_.pop_front();
      flows_.erase(it);
    }
    return served;
  }
}

}  // namespace tls::net
