#include "net/wdrr.hpp"

#include <algorithm>
#include <cassert>

namespace tls::net {

WdrrBand::WdrrBand(Bytes quantum) : quantum_(quantum) { assert(quantum_ > 0); }

void WdrrBand::enqueue(const Chunk& chunk) {
  auto [it, inserted] = flows_.try_emplace(chunk.flow);
  FlowQueue& fq = it->second;
  if (inserted || fq.chunks.empty()) {
    fq.weight = std::max(chunk.weight, kMinWeight);
  }
  fq.chunks.push_back(chunk);
  backlog_bytes_ += chunk.size;
  ++backlog_chunks_;
  if (!fq.in_round) {
    fq.in_round = true;
    fq.deficit = 0;
    active_.push_back(chunk.flow);
  }
}

std::optional<Chunk> WdrrBand::dequeue() {
  if (backlog_chunks_ == 0) return std::nullopt;
  // Each iteration either serves a chunk or tops up one flow's deficit and
  // rotates it; with weight >= kMinWeight a flow needs at most
  // ceil(chunk/quantum/kMinWeight) top-ups, so this terminates quickly.
  for (;;) {
    assert(!active_.empty());
    FlowId fid = active_.front();
    auto it = flows_.find(fid);
    assert(it != flows_.end());
    FlowQueue& fq = it->second;
    assert(!fq.chunks.empty());
    const Chunk& head = fq.chunks.front();
    if (fq.deficit < head.size) {
      fq.deficit += static_cast<Bytes>(static_cast<double>(quantum_) * fq.weight);
      active_.pop_front();
      active_.push_back(fid);
      continue;
    }
    Chunk served = head;
    fq.deficit -= served.size;
    fq.chunks.pop_front();
    backlog_bytes_ -= served.size;
    --backlog_chunks_;
    if (fq.chunks.empty()) {
      fq.in_round = false;
      fq.deficit = 0;
      active_.pop_front();
      flows_.erase(it);
    }
    return served;
  }
}

}  // namespace tls::net
