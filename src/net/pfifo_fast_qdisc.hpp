// pfifo_fast: the actual Linux default qdisc — three strict-priority FIFO
// bands selected by the packet's priority field through a priomap, not by
// filters (pfifo_fast is classless). We map our flow kinds the way the
// default priomap maps TOS: interactive/control traffic to band 0, normal
// best-effort (model and gradient updates) to band 1, bulk to band 2.
// Within a band, service is strict arrival order — which is why per-job
// bursts interleave and the paper's stragglers appear.
#pragma once

#include <array>

#include "net/chunk_ring.hpp"
#include "net/qdisc.hpp"

namespace tls::net {

class PfifoFastQdisc final : public Qdisc {
 public:
  static constexpr int kBands = 3;

  PfifoFastQdisc() = default;

  /// Band for a flow kind under the default priomap.
  static int priomap(FlowKind kind);

  void enqueue(const Chunk& chunk) override;
  DequeueResult dequeue(sim::Time now) override;
  Bytes backlog_bytes() const override;
  std::size_t backlog_chunks() const override;
  std::string kind() const override { return "pfifo_fast"; }
  void drain(std::vector<Chunk>& out) override;
  const QdiscStats& stats() const override { return stats_; }
  std::string stats_text() const override;

  Bytes band_backlog(int band) const {
    return band_bytes_.at(static_cast<std::size_t>(band));
  }

 private:
  std::array<ChunkRing, kBands> bands_;
  std::array<Bytes, kBands> band_bytes_{};
  QdiscStats stats_;
  ByteLedger ledger_;
};

}  // namespace tls::net
