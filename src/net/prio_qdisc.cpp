#include "net/prio_qdisc.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "obs/trace.hpp"

namespace tls::net {

PrioQdisc::PrioQdisc(int bands, Bytes quantum) {
  assert(bands >= 1 && bands <= kMaxBands);
  bands_.reserve(static_cast<std::size_t>(bands));
  for (int i = 0; i < bands; ++i) bands_.emplace_back(quantum);
  band_stats_.resize(static_cast<std::size_t>(bands));
}

void PrioQdisc::enqueue(const Chunk& chunk) {
  TLS_CHECK(chunk.size >= Bytes{0}, "prio enqueue of negative-size chunk: ",
            chunk.size);
  // Out-of-range bands are clamped to the lowest priority, mirroring how a
  // misconfigured tc filter lands traffic in the last band.
  int b = std::clamp<int>(chunk.band.idx(), 0, bands() - 1);
  bands_[static_cast<std::size_t>(b)].enqueue(chunk);
  ledger_.enqueued += chunk.size;
  TLS_DCHECK(ledger_.balanced(backlog_bytes()),
             "prio ledger imbalance after enqueue");
}

DequeueResult PrioQdisc::dequeue(sim::Time now) {
  for (std::size_t b = 0; b < bands_.size(); ++b) {
    if (auto c = bands_[b].dequeue()) {
      stats_.bytes_sent += c->size;
      ++stats_.chunks_sent;
      band_stats_[b].bytes_sent += c->size;
      ++band_stats_[b].chunks_sent;
      if (TLS_OBS_ACTIVE(obs_)) {
        obs_->band_service(now, obs_host_,
                           BandId{static_cast<std::int32_t>(b)}, c->size);
      }
      ledger_.dequeued += c->size;
      TLS_DCHECK(ledger_.balanced(backlog_bytes()),
                 "prio ledger imbalance: in=", ledger_.enqueued, " out=",
                 ledger_.dequeued, " drained=", ledger_.drained, " backlog=",
                 backlog_bytes());
      return DequeueResult::of(*c);
    }
  }
  TLS_DCHECK(backlog_chunks() == 0,
             "prio reported idle with backlog of ", backlog_chunks(),
             " chunks");
  return DequeueResult::idle();
}

std::string PrioQdisc::stats_text() const {
  std::ostringstream os;
  os << "qdisc prio bands " << bands() << ": sent " << stats_.bytes_sent
     << " bytes " << stats_.chunks_sent << " chunks, backlog "
     << backlog_bytes() << " bytes\n";
  for (std::size_t b = 0; b < bands_.size(); ++b) {
    os << "  band " << b << ": sent " << band_stats_[b].bytes_sent
       << " bytes " << band_stats_[b].chunks_sent << " chunks, backlog "
       << bands_[b].backlog_bytes() << " bytes, " << bands_[b].active_flows()
       << " active flows\n";
  }
  return os.str();
}

void PrioQdisc::drain(std::vector<Chunk>& out) {
  for (auto& band : bands_) {
    while (auto c = band.dequeue()) {
      ledger_.drained += c->size;
      out.push_back(*c);
    }
  }
  TLS_DCHECK(ledger_.balanced(backlog_bytes()),
             "prio ledger imbalance after drain");
}

Bytes PrioQdisc::backlog_bytes() const {
  Bytes total{};
  for (const auto& b : bands_) total += b.backlog_bytes();
  return total;
}

std::size_t PrioQdisc::backlog_chunks() const {
  std::size_t total = 0;
  for (const auto& b : bands_) total += b.backlog_chunks();
  return total;
}

}  // namespace tls::net
