// prio: strict-priority bands with weighted-DRR service inside each band.
//
// Band 0 drains first; band k is served only when bands 0..k-1 are empty.
// This is the data-plane model TensorLights configures: each DL job's model
// update traffic is filtered into one band, so a high-priority job's burst
// clears the NIC before lower-priority bursts (Figure 4c/4d of the paper).
// With a single band, prio degenerates to fair sharing among flows, which is
// the FIFO *baseline* model for many long-lived TCP flows.
#pragma once

#include <vector>

#include "net/qdisc.hpp"
#include "net/wdrr.hpp"

namespace tls::net {

class PrioQdisc final : public Qdisc {
 public:
  /// `bands` in [1, 16]; Linux prio supports up to 16 bands. `quantum` is
  /// the WDRR base quantum per band.
  explicit PrioQdisc(int bands = 3, Bytes quantum = 128 * kKiB);

  void enqueue(const Chunk& chunk) override;
  DequeueResult dequeue(sim::Time now) override;
  Bytes backlog_bytes() const override;
  std::size_t backlog_chunks() const override;
  std::string kind() const override { return "prio"; }
  void drain(std::vector<Chunk>& out) override;
  const QdiscStats& stats() const override { return stats_; }
  std::string stats_text() const override;

  /// Per-band service counters.
  const QdiscStats& band_stats(int band) const {
    return band_stats_.at(static_cast<std::size_t>(band));
  }

  int bands() const { return static_cast<int>(bands_.size()); }
  const WdrrBand& band(int i) const { return bands_.at(static_cast<std::size_t>(i)); }

  /// Maximum band count Linux prio accepts.
  static constexpr int kMaxBands = 16;

 private:
  std::vector<WdrrBand> bands_;
  std::vector<QdiscStats> band_stats_;
  QdiscStats stats_;
  ByteLedger ledger_;
};

}  // namespace tls::net
