#include "net/classifier.hpp"

#include <algorithm>

namespace tls::net {

const char* to_string(FlowKind kind) {
  switch (kind) {
    case FlowKind::kModelUpdate: return "model_update";
    case FlowKind::kGradientUpdate: return "gradient_update";
    case FlowKind::kControl: return "control";
    case FlowKind::kBulk: return "bulk";
  }
  return "?";
}

bool FilterRule::matches(const FlowSpec& spec) const {
  if (src_port && *src_port != spec.src_port) return false;
  if (dst_port && *dst_port != spec.dst_port) return false;
  if (job_id && *job_id != spec.job_id) return false;
  if (kind && *kind != spec.kind) return false;
  return true;
}

void Classifier::upsert(const FilterRule& rule) {
  auto it = std::lower_bound(
      rules_.begin(), rules_.end(), rule.pref,
      [](const FilterRule& r, int pref) { return r.pref < pref; });
  if (it != rules_.end() && it->pref == rule.pref) {
    *it = rule;
  } else {
    rules_.insert(it, rule);
  }
}

bool Classifier::remove(int pref) {
  auto it = std::lower_bound(
      rules_.begin(), rules_.end(), pref,
      [](const FilterRule& r, int p) { return r.pref < p; });
  if (it == rules_.end() || it->pref != pref) return false;
  rules_.erase(it);
  return true;
}

void Classifier::clear() { rules_.clear(); }

BandId Classifier::classify(const FlowSpec& spec) const {
  for (const FilterRule& r : rules_) {
    if (r.matches(spec)) return r.target_band;
  }
  return default_band_;
}

}  // namespace tls::net
