#include "net/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace tls::net {

Fabric::Fabric(sim::Simulator& simulator, const FabricConfig& config)
    : sim_(simulator), config_(config), rng_(simulator.rng().fork("fabric")) {
  if (config_.num_hosts < 1) throw std::invalid_argument("num_hosts < 1");
  if (config_.link_rate <= Rate{0.0}) throw std::invalid_argument("link_rate <= 0");
  if (config_.chunk_size <= Bytes{0}) throw std::invalid_argument("chunk_size <= 0");
  if (config_.flow_window < 1) throw std::invalid_argument("flow_window < 1");
  egress_.reserve(static_cast<std::size_t>(config_.num_hosts));
  ingress_.reserve(static_cast<std::size_t>(config_.num_hosts));
  for (HostId h{0}; h < HostId{config_.num_hosts}; ++h) {
    egress_.push_back(std::make_unique<EgressPort>(
        sim_, config_.link_rate,
        [this, h](const Chunk& c) { on_transmit(h, c); }));
    egress_.back()->set_host(h);
    ingress_.push_back(std::make_unique<IngressPort>(
        sim_, config_.link_rate, [this](const Chunk& c) { on_delivered(c); }));
    ingress_.back()->set_host(h);
  }
}

EgressPort& Fabric::egress(HostId host) {
  return *egress_.at(static_cast<std::size_t>(host.idx()));
}
const EgressPort& Fabric::egress(HostId host) const {
  return *egress_.at(static_cast<std::size_t>(host.idx()));
}
IngressPort& Fabric::ingress(HostId host) {
  return *ingress_.at(static_cast<std::size_t>(host.idx()));
}
const IngressPort& Fabric::ingress(HostId host) const {
  return *ingress_.at(static_cast<std::size_t>(host.idx()));
}

Bytes Fabric::chunk_bytes(const FlowState& flow, std::uint32_t index) const {
  Bytes remaining = flow.wire_bytes -
                    config_.chunk_size * static_cast<std::int64_t>(index);
  return std::min(remaining, config_.chunk_size);
}

FlowId Fabric::start_flow(const FlowSpec& spec, FlowCallback on_complete) {
  HostId hosts_end{config_.num_hosts};
  if (spec.src < HostId{0} || spec.src >= hosts_end ||
      spec.dst < HostId{0} || spec.dst >= hosts_end) {
    throw std::invalid_argument("flow endpoints out of range");
  }
  if (spec.bytes < Bytes{0}) throw std::invalid_argument("negative flow size");

  FlowId id = next_flow_id_++;
  if (TLS_OBS_ACTIVE(sim_.tracer())) {
    sim_.tracer()->flow_start(sim_.now(), spec.src, spec.dst, spec.job_id,
                              static_cast<std::int32_t>(spec.kind),
                              static_cast<std::int64_t>(id), spec.bytes,
                              spec.iteration);
  }
  if (spec.bytes == Bytes{0}) {
    // Degenerate flow: deliver "instantly" but asynchronously, preserving
    // the invariant that callbacks never run inside start_flow.
    FlowRecord rec{id, spec, sim_.now(), sim_.now()};
    if (TLS_OBS_ACTIVE(sim_.tracer())) {
      sim_.tracer()->flow_end(sim_.now(), spec.src, spec.dst, spec.job_id,
                              static_cast<std::int32_t>(spec.kind),
                              static_cast<std::int64_t>(id), spec.bytes,
                              spec.iteration, sim::Time{0});
    }
    sim_.schedule_after(sim::Time{0},
                        [cb = std::move(on_complete), rec] { cb(rec); });
    ++completed_flows_;
    return id;
  }

  FlowState flow;
  flow.spec = spec;
  flow.on_complete = std::move(on_complete);
  double noise = config_.tcp_weight_sigma > 0
                     ? rng_.lognormal_median(1.0, config_.tcp_weight_sigma)
                     : 1.0;
  flow.noisy_weight = spec.weight * noise;
  flow.window = std::clamp(
      static_cast<int>(std::lround(config_.flow_window * flow.noisy_weight)),
      1, 4 * config_.flow_window);
  // The scheduler moves wire bytes: payload inflated by transport overhead.
  flow.wire_bytes = std::max(
      Bytes{1},
      Bytes{std::llround(to_double(spec.bytes) * config_.protocol_overhead)});
  flow.chunks_total = static_cast<std::uint32_t>(
      (flow.wire_bytes + config_.chunk_size - Bytes{1}) / config_.chunk_size);
  flow.start = sim_.now();
  auto [it, inserted] = flows_.emplace(id, std::move(flow));
  assert(inserted);
  admit(id, it->second);
  return id;
}

void Fabric::admit(FlowId id, FlowState& flow) {
  while (flow.next_index < flow.chunks_total &&
         static_cast<int>(flow.next_index - flow.delivered_chunks) <
             flow.window) {
    Chunk chunk;
    chunk.flow = id;
    chunk.index = flow.next_index;
    chunk.size = chunk_bytes(flow, flow.next_index);
    chunk.last = (flow.next_index + 1 == flow.chunks_total);
    chunk.weight = flow.noisy_weight;
    chunk.dst = flow.spec.dst;
    chunk.job = flow.spec.job_id;
    chunk.kind = flow.spec.kind;
    ++flow.next_index;
    egress(flow.spec.src).submit(chunk, flow.spec);
  }
}

void Fabric::on_transmit(HostId /*src*/, const Chunk& chunk) {
  // Switch traversal; the switch itself is non-blocking, so the only
  // contention on the receive path is the destination ingress drain.
  sim_.schedule_after(config_.switch_latency,
                      [this, chunk] { ingress(chunk.dst).arrive(chunk); });
}

void Fabric::on_delivered(const Chunk& chunk) {
  auto it = flows_.find(chunk.flow);
  assert(it != flows_.end());
  FlowState& flow = it->second;
  ++flow.delivered_chunks;
  if (flow.delivered_chunks == flow.chunks_total) {
    FlowRecord rec{chunk.flow, flow.spec, flow.start, sim_.now()};
    FlowCallback cb = std::move(flow.on_complete);
    flows_.erase(it);
    ++completed_flows_;
    if (TLS_OBS_ACTIVE(sim_.tracer())) {
      sim_.tracer()->flow_end(sim_.now(), rec.spec.src, rec.spec.dst,
                              rec.spec.job_id,
                              static_cast<std::int32_t>(rec.spec.kind),
                              static_cast<std::int64_t>(rec.id),
                              rec.spec.bytes, rec.spec.iteration,
                              rec.end - rec.start);
    }
    if (cb) cb(rec);
    return;
  }
  admit(chunk.flow, flow);
}

}  // namespace tls::net
