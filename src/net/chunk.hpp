// Flow and chunk descriptors shared across the network substrate.
//
// A "flow" is one application message (e.g. a model update to one worker)
// and a "chunk" is the unit the NIC schedules — a fixed-size segment of a
// flow, standing in for a TSO burst of packets. Scheduling at chunk
// granularity is what lets the simulator reproduce FIFO-vs-priority
// interleaving effects without paying for per-packet events.
#pragma once

#include <cstdint>
#include <string>

#include "net/units.hpp"
#include "simcore/time.hpp"

namespace tls::net {

/// Application-level meaning of a flow; used for instrumentation and
/// (optionally) by classifier rules.
enum class FlowKind : std::uint8_t {
  kModelUpdate,     ///< PS -> worker parameter broadcast leg.
  kGradientUpdate,  ///< worker -> PS gradient push leg.
  kControl,         ///< small RPC-ish traffic.
  kBulk,            ///< anything else (background load, tests).
};

const char* to_string(FlowKind kind);

/// Immutable description of a transfer, fixed at start_flow() time.
struct FlowSpec {
  HostId src = kNoHost;
  HostId dst = kNoHost;
  Bytes bytes{};
  /// TCP-ish endpoint ports. In the PS architecture the PS port is stable
  /// for the job's lifetime, which is exactly what tc filters match on.
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  /// Owning job, or -1 for non-job traffic.
  std::int32_t job_id = -1;
  FlowKind kind = FlowKind::kBulk;
  /// Synchronous-barrier iteration this transfer serves (-1 = startup or
  /// non-barrier traffic). Purely observational: stamped by the workload
  /// onto flow/chunk trace events so obs::analysis can attribute each
  /// chunk to the iteration whose barrier it gates.
  std::int64_t iteration = -1;
  /// Base service weight inside a band (multiplied by the fabric's
  /// per-flow TCP-unfairness noise).
  double weight = 1.0;
};

/// One schedulable segment of a flow.
struct Chunk {
  FlowId flow = 0;
  Bytes size{};
  std::uint32_t index = 0;
  bool last = false;
  /// Band/class assigned by the egress classifier at admission time.
  BandId band{0};
  /// Service weight inherited from the flow (with noise applied).
  double weight = 1.0;
  /// Destination host, denormalized for the egress->ingress handoff.
  HostId dst = kNoHost;
  /// Owning job, denormalized from the flow spec for trace attribution
  /// (-1 = background/non-job traffic).
  std::int32_t job = -1;
  /// Application kind, for priomap-style disciplines (pfifo_fast) and
  /// instrumentation.
  FlowKind kind = FlowKind::kBulk;
  /// Simulation time the chunk entered the egress qdisc (stamped by
  /// EgressPort::submit); queue-wait and HOL-blocking metrics derive from
  /// dequeue-time minus this.
  sim::Time enqueued_at{};
};

}  // namespace tls::net
