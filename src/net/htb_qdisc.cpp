#include "net/htb_qdisc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/trace.hpp"
#include "simcore/time.hpp"

namespace tls::net {

namespace {
bool valid_config(const HtbClassConfig& c) {
  return c.minor != 0 && c.rate > Rate{0.0} && c.ceil >= c.rate &&
         c.burst > Bytes{0} && c.cburst > Bytes{0} && c.quantum > Bytes{0};
}
}  // namespace

HtbQdisc::HtbQdisc(Rate root_rate, std::uint32_t default_minor)
    : root_rate_(root_rate),
      default_minor_(default_minor),
      root_tokens_(0),
      root_burst_(256 * kKiB) {
  TLS_CHECK(root_rate_ > Rate{0.0}, "htb root rate must be positive, got ",
            root_rate_);
  root_tokens_ = to_double(root_burst_);
}

bool HtbQdisc::add_class(const HtbClassConfig& config) {
  if (!valid_config(config) || has_class(config.minor)) return false;
  classes_.emplace(config.minor, LeafClass(config));
  return true;
}

bool HtbQdisc::change_class(const HtbClassConfig& config) {
  if (!valid_config(config)) return false;
  auto it = classes_.find(config.minor);
  if (it == classes_.end()) return false;
  LeafClass& leaf = it->second;
  leaf.cfg = config;
  leaf.tokens = to_double(config.burst);
  leaf.ctokens = to_double(config.cburst);
  return true;
}

bool HtbQdisc::delete_class(std::uint32_t minor) {
  auto it = classes_.find(minor);
  if (it == classes_.end()) return false;
  if (!it->second.queue.empty()) return false;
  classes_.erase(it);
  return true;
}

std::optional<HtbClassConfig> HtbQdisc::class_config(std::uint32_t minor) const {
  auto it = classes_.find(minor);
  if (it == classes_.end()) return std::nullopt;
  return it->second.cfg;
}

Bytes HtbQdisc::class_backlog(std::uint32_t minor) const {
  auto it = classes_.find(minor);
  return it == classes_.end() ? Bytes{0} : it->second.queue.backlog_bytes();
}

void HtbQdisc::enqueue(const Chunk& chunk) {
  TLS_CHECK(chunk.size >= Bytes{0}, "htb enqueue of negative-size chunk: ",
            chunk.size);
  ledger_.enqueued += chunk.size;
  std::uint32_t minor =
      chunk.band.valid() ? static_cast<std::uint32_t>(chunk.band.idx()) : 0;
  auto it = classes_.find(minor);
  if (it == classes_.end() && default_minor_ != 0) {
    it = classes_.find(default_minor_);
  }
  if (it == classes_.end()) {
    direct_.push_back(chunk);
    direct_bytes_ += chunk.size;
    TLS_DCHECK(ledger_.balanced(backlog_bytes()),
               "htb ledger imbalance after direct enqueue");
    return;
  }
  it->second.queue.enqueue(chunk);
  TLS_DCHECK(ledger_.balanced(backlog_bytes()),
             "htb ledger imbalance after enqueue");
}

void HtbQdisc::refill(LeafClass& leaf, sim::Time now) const {
  double dt = sim::to_seconds(now - leaf.last_refill);
  if (dt <= 0) return;
  leaf.tokens = std::min(to_double(leaf.cfg.burst),
                         leaf.tokens + bytes_in(leaf.cfg.rate, dt));
  leaf.ctokens = std::min(to_double(leaf.cfg.cburst),
                          leaf.ctokens + bytes_in(leaf.cfg.ceil, dt));
  leaf.last_refill = now;
}

void HtbQdisc::refill_root(sim::Time now) {
  double dt = sim::to_seconds(now - root_last_refill_);
  if (dt <= 0) return;
  root_tokens_ = std::min(to_double(root_burst_),
                          root_tokens_ + bytes_in(root_rate_, dt));
  root_last_refill_ = now;
}

HtbQdisc::Mode HtbQdisc::mode_of(const LeafClass& leaf) const {
  if (root_tokens_ < 0) return Mode::kRed;
  if (leaf.tokens >= 0) return Mode::kGreen;
  if (leaf.ctokens >= 0) return Mode::kYellow;
  return Mode::kRed;
}

double HtbQdisc::eligible_in(const LeafClass& leaf) const {
  double root_wait =
      root_tokens_ >= 0 ? 0.0 : seconds_for(-root_tokens_, root_rate_);
  double green_wait =
      leaf.tokens >= 0 ? 0.0 : seconds_for(-leaf.tokens, leaf.cfg.rate);
  double yellow_wait =
      leaf.ctokens >= 0 ? 0.0 : seconds_for(-leaf.ctokens, leaf.cfg.ceil);
  return std::max(root_wait, std::min(green_wait, yellow_wait));
}

DequeueResult HtbQdisc::dequeue(sim::Time now) {
  // Direct (unclassified) traffic bypasses shaping entirely, like htb's
  // direct queue.
  if (!direct_.empty()) {
    Chunk c = direct_.take_front();
    direct_bytes_ -= c.size;
    TLS_CHECK(direct_bytes_ >= Bytes{0}, "htb direct backlog went negative: ",
              direct_bytes_);
    stats_.bytes_sent += c.size;
    ++stats_.chunks_sent;
    ledger_.dequeued += c.size;
    TLS_DCHECK(ledger_.balanced(backlog_bytes()),
               "htb ledger imbalance after direct dequeue");
    return DequeueResult::of(c);
  }
  if (backlog_chunks() == 0) return DequeueResult::idle();

  refill_root(now);
  for (auto& [minor, leaf] : classes_) {
    (void)minor;
    refill(leaf, now);
  }

  // Pick GREEN first, then YELLOW; tie-break by (prio, least recently
  // served) for borrowing fairness among peers.
  LeafClass* best = nullptr;
  Mode best_mode = Mode::kRed;
  auto better = [&](LeafClass& cand, Mode m) {
    if (best == nullptr) return true;
    if (m != best_mode) return m == Mode::kGreen;
    if (cand.cfg.prio != best->cfg.prio) return cand.cfg.prio < best->cfg.prio;
    return cand.last_served < best->last_served;
  };
  for (auto& [minor, leaf] : classes_) {
    (void)minor;
    if (leaf.queue.empty()) continue;
    Mode m = mode_of(leaf);
    if (m == Mode::kRed) continue;
    if (better(leaf, m)) {
      best = &leaf;
      best_mode = m;
    }
  }

  if (best == nullptr) {
    // Everything backlogged is RED: report the earliest eligibility.
    double wait_s = std::numeric_limits<double>::infinity();
    for (auto& [minor, leaf] : classes_) {
      (void)minor;
      if (leaf.queue.empty()) continue;
      wait_s = std::min(wait_s, eligible_in(leaf));
    }
    TLS_CHECK(std::isfinite(wait_s),
              "htb: all-red backlog but no finite eligibility time");
    ++stats_.overlimits;
    sim::Time retry = now + std::max(sim::from_seconds(wait_s), sim::Time{1});
    TLS_CHECK(retry > now, "htb retry time not in the future: retry=", retry,
              " now=", now);
    if (TLS_OBS_ACTIVE(obs_)) obs_->overlimit(now, obs_host_, retry);
    return DequeueResult::wait_until(retry);
  }

  std::optional<Chunk> chunk = best->queue.dequeue();
  TLS_CHECK(chunk.has_value(), "htb picked a class with an empty queue");
  double need = to_double(chunk->size);
  // Sending consumes ceil credit and root credit; assured-rate credit only
  // when sending green. Buckets may overdraw (go negative) by one chunk.
  if (best_mode == Mode::kGreen) best->tokens -= need;
  best->ctokens -= need;
  root_tokens_ -= need;
  best->last_served = ++serve_seq_;
  stats_.bytes_sent += chunk->size;
  ++stats_.chunks_sent;
  best->stats.bytes_sent += chunk->size;
  ++best->stats.chunks_sent;
  if (best_mode == Mode::kGreen) {
    ++stats_.green_sends;
    ++best->stats.green_sends;
  } else {
    ++stats_.yellow_sends;
    ++best->stats.yellow_sends;
  }
  if (TLS_OBS_ACTIVE(obs_)) {
    obs_->htb_send(now, obs_host_,
                   BandId{static_cast<std::int32_t>(best->cfg.minor)},
                   chunk->size, best_mode != Mode::kGreen);
  }
  ledger_.dequeued += chunk->size;
  TLS_DCHECK(ledger_.balanced(backlog_bytes()), "htb ledger imbalance: in=",
             ledger_.enqueued, " out=", ledger_.dequeued, " drained=",
             ledger_.drained, " backlog=", backlog_bytes());
  return DequeueResult::of(*chunk);
}

void HtbQdisc::drain(std::vector<Chunk>& out) {
  direct_.append_to(out);
  direct_.clear();
  ledger_.drained += direct_bytes_;
  direct_bytes_ = Bytes{0};
  for (auto& [minor, leaf] : classes_) {
    (void)minor;
    while (auto c = leaf.queue.dequeue()) {
      ledger_.drained += c->size;
      out.push_back(*c);
    }
  }
  TLS_DCHECK(ledger_.balanced(backlog_bytes()),
             "htb ledger imbalance after drain");
}

Bytes HtbQdisc::backlog_bytes() const {
  Bytes total = direct_bytes_;
  for (const auto& [minor, leaf] : classes_) {
    (void)minor;
    total += leaf.queue.backlog_bytes();
  }
  return total;
}

QdiscStats HtbQdisc::class_stats(std::uint32_t minor) const {
  auto it = classes_.find(minor);
  return it == classes_.end() ? QdiscStats{} : it->second.stats;
}

std::string HtbQdisc::stats_text() const {
  std::ostringstream os;
  os << "qdisc htb: sent " << stats_.bytes_sent << " bytes "
     << stats_.chunks_sent << " chunks (green " << stats_.green_sends
     << ", yellow " << stats_.yellow_sends << "), overlimits "
     << stats_.overlimits << ", backlog " << backlog_bytes() << " bytes\n";
  for (const auto& [minor, leaf] : classes_) {
    os << "  class 1:" << std::hex << minor << std::dec << " prio "
       << leaf.cfg.prio << ": sent " << leaf.stats.bytes_sent << " bytes "
       << leaf.stats.chunks_sent << " chunks (green "
       << leaf.stats.green_sends << ", yellow " << leaf.stats.yellow_sends
       << "), backlog " << leaf.queue.backlog_bytes() << " bytes\n";
  }
  return os.str();
}

std::size_t HtbQdisc::backlog_chunks() const {
  std::size_t total = direct_.size();
  for (const auto& [minor, leaf] : classes_) {
    (void)minor;
    total += leaf.queue.backlog_chunks();
  }
  return total;
}

}  // namespace tls::net
