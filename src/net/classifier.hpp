// Egress traffic classifier: the simulated analog of `tc filter`.
//
// TensorLights identifies a job's model-update traffic by the PS's TCP port
// (stable for the job's lifetime in TensorFlow), so rules here match on
// src/dst port and optionally job id or flow kind, and map to a band (prio
// qdisc) or classid minor (htb).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/chunk.hpp"

namespace tls::net {

/// One match rule. All present fields must match ("AND" semantics); rules
/// are evaluated in ascending `pref` order and the first match wins, as in
/// tc.
struct FilterRule {
  /// Evaluation order; lower first. Must be unique per classifier.
  int pref = 100;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  std::optional<std::int32_t> job_id;
  std::optional<FlowKind> kind;
  /// Band (prio) or classid minor (htb) the matched traffic maps to.
  BandId target_band{0};

  bool matches(const FlowSpec& spec) const;
};

/// Ordered first-match-wins rule table with a default band.
class Classifier {
 public:
  /// Inserts or replaces the rule at `rule.pref`.
  void upsert(const FilterRule& rule);

  /// Removes the rule at `pref`; returns false when absent.
  bool remove(int pref);

  /// Drops all rules (keeps the default band).
  void clear();

  /// Band for unmatched traffic (default 0).
  void set_default_band(BandId band) { default_band_ = band; }
  BandId default_band() const { return default_band_; }

  /// Returns the band for `spec` per first-match-wins evaluation.
  BandId classify(const FlowSpec& spec) const;

  std::size_t size() const { return rules_.size(); }
  const std::vector<FilterRule>& rules() const { return rules_; }

 private:
  std::vector<FilterRule> rules_;  // kept sorted by pref
  BandId default_band_{0};
};

}  // namespace tls::net
