// htb: hierarchical token bucket, the discipline the paper deploys via tc.
//
// We model the two-level tree the paper uses: one root class at link rate
// and one leaf class per priority level. A leaf is
//   * GREEN  when it has tokens for its assured `rate`,
//   * YELLOW when it is over `rate` but under `ceil` and can borrow from
//     the root (the work-conserving case TensorLights relies on),
//   * RED    when it may not send; the qdisc then reports the earliest
//     time any backlogged leaf becomes eligible.
// Green leaves are served before yellow ones; ties break by class `prio`
// (lower first), then least-recently-served for fairness. Inside a leaf,
// flows share via weighted DRR.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "net/chunk_ring.hpp"
#include "net/qdisc.hpp"
#include "net/wdrr.hpp"

namespace tls::net {

/// Static configuration of one htb leaf class.
struct HtbClassConfig {
  /// classid minor (1:minor); must be > 0 and unique in the qdisc.
  std::uint32_t minor = 0;
  /// Assured rate (bytes/sec, > 0).
  Rate rate = mbps(1);
  /// Ceiling rate when borrowing (bytes/sec, >= rate).
  Rate ceil = gbps(10);
  /// Token bucket depths.
  Bytes burst = 64 * kKiB;
  Bytes cburst = 64 * kKiB;
  /// Priority among borrowing classes; 0 is served first.
  int prio = 0;
  /// WDRR quantum for flows inside the class.
  Bytes quantum = 128 * kKiB;
};

class HtbQdisc final : public Qdisc {
 public:
  /// `root_rate` is the total rate the tree may emit (normally the link
  /// rate). Chunks whose band matches no class minor go to `default_minor`
  /// if that class exists, otherwise to the unshaped direct queue (mirrors
  /// htb's `default`/direct-queue behaviour).
  explicit HtbQdisc(Rate root_rate, std::uint32_t default_minor = 0);

  /// Adds a leaf class. Returns false (and changes nothing) when the minor
  /// is 0, duplicated, or the config is invalid (rate <= 0 or ceil < rate).
  bool add_class(const HtbClassConfig& config);

  /// Replaces the configuration of an existing class, keeping its backlog.
  /// Token buckets are reset to full. Returns false when absent/invalid.
  bool change_class(const HtbClassConfig& config);

  /// Removes an *empty* class. Returns false when absent or backlogged.
  bool delete_class(std::uint32_t minor);

  bool has_class(std::uint32_t minor) const { return classes_.count(minor) != 0; }
  std::optional<HtbClassConfig> class_config(std::uint32_t minor) const;
  std::size_t class_count() const { return classes_.size(); }
  Bytes class_backlog(std::uint32_t minor) const;

  void enqueue(const Chunk& chunk) override;
  DequeueResult dequeue(sim::Time now) override;
  Bytes backlog_bytes() const override;
  std::size_t backlog_chunks() const override;
  std::string kind() const override { return "htb"; }
  void drain(std::vector<Chunk>& out) override;
  const QdiscStats& stats() const override { return stats_; }
  std::string stats_text() const override;

  /// Per-class service counters; green_sends/yellow_sends record how often
  /// the class sent at its assured rate vs by borrowing from the root —
  /// the paper's green/yellow traffic-light states, measured.
  QdiscStats class_stats(std::uint32_t minor) const;

 private:
  struct LeafClass {
    HtbClassConfig cfg;
    WdrrBand queue;
    double tokens = 0;   // bytes of assured-rate credit
    double ctokens = 0;  // bytes of ceil-rate credit
    sim::Time last_refill{};
    std::uint64_t last_served = 0;
    QdiscStats stats;

    explicit LeafClass(const HtbClassConfig& c)
        : cfg(c), queue(c.quantum), tokens(to_double(c.burst)),
          ctokens(to_double(c.cburst)) {}
  };

  enum class Mode { kGreen, kYellow, kRed };

  void refill(LeafClass& leaf, sim::Time now) const;
  void refill_root(sim::Time now);
  /// htb lets buckets go negative by up to one packet: a class may send
  /// while its bucket is >= 0 and the charge can overdraw it, so classes
  /// stay schedulable regardless of the chunk-size/burst ratio.
  Mode mode_of(const LeafClass& leaf) const;
  /// Seconds until `leaf` becomes eligible again (buckets back to >= 0).
  double eligible_in(const LeafClass& leaf) const;

  Rate root_rate_;
  std::uint32_t default_minor_;
  double root_tokens_;
  Bytes root_burst_;
  sim::Time root_last_refill_{};
  std::uint64_t serve_seq_ = 0;

  // Ordered map => deterministic iteration, stable tie-breaking.
  std::map<std::uint32_t, LeafClass> classes_;
  ChunkRing direct_;  // unclassified, unshaped
  Bytes direct_bytes_{};
  QdiscStats stats_;
  ByteLedger ledger_;
};

}  // namespace tls::net
