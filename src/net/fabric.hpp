// The cluster fabric: N hosts on a non-blocking switch (star topology).
//
// Each host owns an egress NIC (with classifier + pluggable qdisc) and an
// ingress NIC (FIFO drain). A flow is segmented into chunks which are
// admitted into the egress qdisc under a delivery-clocked window — the
// stand-in for TCP self-clocking: at most `flow_window` chunks of a flow
// are inside the network at once, and each delivery admits the next chunk.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/port.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"

namespace tls::net {

struct FabricConfig {
  int num_hosts = 2;
  Rate link_rate = gbps(10);
  /// One-way switch traversal latency applied between egress and ingress.
  sim::Time switch_latency = 5 * sim::kMicrosecond;
  /// Segmentation unit; smaller chunks raise fidelity and event count.
  Bytes chunk_size = 128 * kKiB;
  /// Base in-network chunk budget per flow (TCP window stand-in). A flow's
  /// actual window is flow_window scaled by its (noisy) weight and clamped
  /// to [1, 4*flow_window]; because a window-limited flow's throughput
  /// through a shared queue is proportional to its window, this gives the
  /// persistent per-flow rate differences real TCP exhibits — which is what
  /// spreads a burst's completions and creates stragglers under FIFO.
  int flow_window = 4;
  /// Sigma of the lognormal per-flow weight noise modelling TCP throughput
  /// unfairness through a shared queue. 0 disables the noise.
  double tcp_weight_sigma = 0.3;
  /// Wire bytes transferred per payload byte, modelling transport
  /// inefficiency: TensorFlow's gRPC path falls well short of line rate
  /// (serialization, framing, TCP/IP overhead — cf. the Poseidon/TicTac
  /// measurements). Set to 1.0 for an ideal transport.
  double protocol_overhead = 1.3;
};

/// Completion record handed to the flow's callback.
struct FlowRecord {
  FlowId id = 0;
  FlowSpec spec{};
  sim::Time start{};
  sim::Time end{};
};

class Fabric {
 public:
  using FlowCallback = std::function<void(const FlowRecord&)>;

  Fabric(sim::Simulator& simulator, const FabricConfig& config);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Starts a transfer; `on_complete` fires (once) when the last byte is
  /// delivered at the destination. Zero-byte flows complete on the next
  /// event dispatch. Returns the flow id.
  FlowId start_flow(const FlowSpec& spec, FlowCallback on_complete);

  int num_hosts() const { return config_.num_hosts; }
  const FabricConfig& config() const { return config_; }

  EgressPort& egress(HostId host);
  const EgressPort& egress(HostId host) const;
  IngressPort& ingress(HostId host);
  const IngressPort& ingress(HostId host) const;

  /// Flows started but not yet fully delivered.
  std::size_t active_flows() const { return flows_.size(); }

  /// Total flows completed since construction.
  std::uint64_t completed_flows() const { return completed_flows_; }

 private:
  struct FlowState {
    FlowSpec spec;
    FlowCallback on_complete;
    double noisy_weight = 1.0;
    int window = 1;
    Bytes wire_bytes{};
    std::uint32_t chunks_total = 0;
    std::uint32_t next_index = 0;       // next chunk to admit
    std::uint32_t delivered_chunks = 0;
    sim::Time start{};
  };

  void admit(FlowId id, FlowState& flow);
  void on_transmit(HostId src, const Chunk& chunk);
  void on_delivered(const Chunk& chunk);
  Bytes chunk_bytes(const FlowState& flow, std::uint32_t index) const;

  sim::Simulator& sim_;
  FabricConfig config_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<EgressPort>> egress_;
  std::vector<std::unique_ptr<IngressPort>> ingress_;
  std::unordered_map<FlowId, FlowState> flows_;
  FlowId next_flow_id_ = 1;
  std::uint64_t completed_flows_ = 0;
};

}  // namespace tls::net
