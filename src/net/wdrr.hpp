// Weighted deficit-round-robin over per-flow queues.
//
// This is the intra-band scheduler used by both the prio qdisc and htb leaf
// classes. Weights model the throughput share each TCP flow would obtain
// through a shared queue; the fabric draws a lognormal per-flow noise factor
// so completions inside a burst spread out the way they do on a real NIC.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <unordered_map>

#include "net/chunk.hpp"
#include "net/chunk_ring.hpp"

namespace tls::net {

/// One DRR band: a set of active per-flow FIFO queues served round-robin,
/// each earning `quantum * weight` bytes of deficit per round.
class WdrrBand {
 public:
  /// `quantum` is the base per-round byte allowance for weight-1.0 flows;
  /// it should be at least the common chunk size or DRR degenerates into
  /// multi-round spinning.
  explicit WdrrBand(Bytes quantum = 128 * kKiB);

  // Move-only: the per-flow ChunkRings own arena allocations.
  WdrrBand(WdrrBand&&) = default;
  WdrrBand& operator=(WdrrBand&&) = default;
  WdrrBand(const WdrrBand&) = delete;
  WdrrBand& operator=(const WdrrBand&) = delete;

  void enqueue(const Chunk& chunk);

  /// Serves the next chunk in weighted round-robin order, or nullopt when
  /// the band is empty.
  std::optional<Chunk> dequeue();

  Bytes backlog_bytes() const { return backlog_bytes_; }
  std::size_t backlog_chunks() const { return backlog_chunks_; }
  bool empty() const { return backlog_chunks_ == 0; }

  /// Number of flows currently backlogged in this band.
  std::size_t active_flows() const { return active_.size(); }

  Bytes quantum() const { return quantum_; }

 private:
  struct FlowQueue {
    ChunkRing chunks;
    double weight = 1.0;
    Bytes deficit{};
    bool in_round = false;  // currently on the active list
  };

  // Minimum effective weight; guards against pathological starvation and
  // unbounded DRR rounds when a noise draw comes out tiny.
  static constexpr double kMinWeight = 0.05;

  Bytes quantum_;
  std::unordered_map<FlowId, FlowQueue> flows_;
  std::deque<FlowId> active_;
  Bytes backlog_bytes_{};
  std::size_t backlog_chunks_ = 0;
};

}  // namespace tls::net
