// tlsim: command-line front end for the TensorLights cluster simulator.
#include <iostream>
#include <string>
#include <vector>

#include "runtime/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return tls::runtime::run_cli(args, std::cout, std::cerr);
}
