#include "tls_lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

namespace tls::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when the token starting at `pos` is a call of a bare (or std::)
/// function: not a suffix of a longer identifier, not a member access
/// (`x.time(`), and not qualified by anything except `std::`.
bool is_banned_call_site(const std::string& line, std::size_t pos) {
  if (pos == 0) return true;
  char prev = line[pos - 1];
  if (is_ident_char(prev) || prev == '.') return false;
  if (prev == ':') {
    // Qualified call: only std::foo( is the banned global.
    return pos >= 5 && line.compare(pos - 5, 5, "std::") == 0;
  }
  return true;
}

/// Finds a whole-word occurrence of `token` in `line` (identifier
/// boundaries on both sides). Returns npos when absent.
std::size_t find_word(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    std::size_t end = pos + token.size();
    bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> segs;
  std::string cur;
  for (char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) segs.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) segs.push_back(cur);
  return segs;
}

/// Hot-path scoping for the unordered-iteration rule. obs/ is included
/// because export iteration order feeds byte-identical trace/metrics files.
bool in_hot_path_dir(const std::string& rel_path) {
  for (const std::string& seg : split_path(rel_path)) {
    if (seg == "net" || seg == "simcore" || seg == "tensorlights" ||
        seg == "obs") {
      return true;
    }
  }
  return false;
}

/// runtime/ is the one sanctioned home of threading primitives: it runs
/// whole (independently seeded, internally single-threaded) simulations in
/// parallel, never threads inside one simulation.
bool in_runtime_dir(const std::string& rel_path) {
  for (const std::string& seg : split_path(rel_path)) {
    if (seg == "runtime") return true;
  }
  return false;
}

/// src/simcore/rng.* is the one sanctioned home of raw generator machinery.
bool is_rng_module(const std::string& rel_path) {
  std::vector<std::string> segs = split_path(rel_path);
  if (segs.empty()) return false;
  const std::string& name = segs.back();
  return name.rfind("rng.", 0) == 0 &&
         (segs.size() < 2 || segs[segs.size() - 2] == "simcore");
}

bool is_header(const std::string& rel_path) {
  return rel_path.size() >= 2 &&
         (rel_path.ends_with(".hpp") || rel_path.ends_with(".h"));
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

}  // namespace

std::string strip_comments_and_strings(const std::string& source) {
  std::string out = source;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < source.size(); ++i) {
    char c = source[i];
    char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> unordered_decl_names(const std::string& source) {
  std::string code = strip_comments_and_strings(source);
  std::vector<std::string> names;
  for (const char* token : {"unordered_map", "unordered_set"}) {
    std::size_t pos = 0;
    std::string tok(token);
    while (pos < code.size()) {
      std::size_t hit = code.find(tok, pos);
      if (hit == std::string::npos) break;
      pos = hit + tok.size();
      bool left_ok = hit == 0 || !is_ident_char(code[hit - 1]);
      if (!left_ok) continue;
      // Skip whitespace, expect the template argument list.
      std::size_t i = pos;
      while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) ++i;
      if (i >= code.size() || code[i] != '<') continue;
      int depth = 0;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>') {
          --depth;
          if (depth == 0) {
            ++i;
            break;
          }
        }
      }
      // Optional reference/pointer declarator, then the declared name.
      while (i < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[i])) ||
              code[i] == '&' || code[i] == '*')) {
        ++i;
      }
      std::string name;
      while (i < code.size() && is_ident_char(code[i])) name.push_back(code[i++]);
      // `const` between type and name, e.g. map<K,V> const x — rare; and
      // `::iterator` chains yield no name here, which is what we want.
      if (!name.empty() && name != "const") names.push_back(name);
      pos = i;
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<Finding> lint_source(
    const std::string& rel_path, const std::string& source,
    const std::vector<std::string>& extra_unordered_names) {
  std::vector<Finding> findings;
  auto add = [&](int line, const std::string& rule, const std::string& msg) {
    findings.push_back(Finding{rel_path, line, rule, msg});
  };

  if (is_header(rel_path) && source.find("#pragma once") == std::string::npos) {
    add(0, "missing-pragma-once", "header is missing #pragma once");
  }

  std::string code = strip_comments_and_strings(source);
  std::vector<std::string> lines = split_lines(code);

  std::vector<std::string> unordered = unordered_decl_names(source);
  unordered.insert(unordered.end(), extra_unordered_names.begin(),
                   extra_unordered_names.end());
  std::sort(unordered.begin(), unordered.end());
  unordered.erase(std::unique(unordered.begin(), unordered.end()),
                  unordered.end());

  const bool hot = in_hot_path_dir(rel_path);
  const bool rng_ok = is_rng_module(rel_path);
  const bool threads_ok = in_runtime_dir(rel_path);

  static const char* kWallClockTokens[] = {
      "system_clock", "steady_clock", "high_resolution_clock", "gettimeofday",
      "clock_gettime", "localtime", "gmtime"};
  static const char* kWallClockCalls[] = {"time", "clock"};
  static const char* kRngTokens[] = {"random_device", "mt19937", "minstd_rand",
                                     "default_random_engine", "ranlux24",
                                     "ranlux48", "knuth_b", "drand48",
                                     "lrand48", "random_shuffle"};
  static const char* kRngCalls[] = {"rand", "srand"};
  // Matched only as std::-qualified names: bare words like "thread" or
  // "future" are too common as local identifiers.
  static const char* kThreadingTypes[] = {
      "thread", "jthread", "mutex", "timed_mutex", "recursive_mutex",
      "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
      "condition_variable", "condition_variable_any", "atomic", "atomic_flag",
      "future", "shared_future", "promise", "async", "lock_guard",
      "unique_lock", "scoped_lock", "shared_lock", "call_once", "once_flag",
      "counting_semaphore", "binary_semaphore", "latch", "barrier"};
  static const char* kThreadingHeaders[] = {
      "<thread>", "<mutex>", "<shared_mutex>", "<condition_variable>",
      "<atomic>", "<future>", "<semaphore>", "<latch>", "<barrier>",
      "<stop_token>"};

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    int lineno = static_cast<int>(li) + 1;

    // --- wall-clock ---
    for (const char* tok : kWallClockTokens) {
      if (find_word(line, tok) != std::string::npos) {
        add(lineno, "wall-clock",
            std::string("host clock access '") + tok +
                "' — simulation time must come from Simulator::now()");
      }
    }
    for (const char* fn : kWallClockCalls) {
      std::string call = std::string(fn) + "(";
      std::size_t pos = 0;
      while ((pos = line.find(call, pos)) != std::string::npos) {
        if (is_banned_call_site(line, pos)) {
          add(lineno, "wall-clock",
              std::string("call of '") + fn +
                  "()' — simulation time must come from Simulator::now()");
          break;
        }
        pos += call.size();
      }
    }

    // --- banned-rng ---
    if (!rng_ok) {
      for (const char* tok : kRngTokens) {
        if (find_word(line, tok) != std::string::npos) {
          add(lineno, "banned-rng",
              std::string("raw generator '") + tok +
                  "' — draw from a tls::sim::Rng stream instead");
        }
      }
      for (const char* fn : kRngCalls) {
        std::string call = std::string(fn) + "(";
        std::size_t pos = 0;
        while ((pos = line.find(call, pos)) != std::string::npos) {
          if (is_banned_call_site(line, pos)) {
            add(lineno, "banned-rng",
                std::string("call of '") + fn +
                    "()' — draw from a tls::sim::Rng stream instead");
            break;
          }
          pos += call.size();
        }
      }
    }

    // --- threading-outside-runtime ---
    if (!threads_ok) {
      for (const char* tok : kThreadingTypes) {
        // All whole-word occurrences, accepted only when std::-qualified.
        std::string t(tok);
        std::size_t pos = 0;
        bool hit = false;
        while (!hit && (pos = line.find(t, pos)) != std::string::npos) {
          std::size_t end = pos + t.size();
          bool right_ok = end >= line.size() || !is_ident_char(line[end]);
          bool qualified =
              pos >= 5 && line.compare(pos - 5, 5, "std::") == 0 &&
              (pos == 5 || !is_ident_char(line[pos - 6]));
          if (right_ok && qualified) hit = true;
          pos = end;
        }
        if (hit) {
          add(lineno, "threading-outside-runtime",
              std::string("threading primitive 'std::") + tok +
                  "' — the simulator core is single-threaded by contract; "
                  "only tls::runtime may spawn or synchronize threads");
        }
      }
      if (line.find("#include") != std::string::npos) {
        for (const char* hdr : kThreadingHeaders) {
          if (line.find(hdr) != std::string::npos) {
            add(lineno, "threading-outside-runtime",
                std::string("include of ") + hdr +
                    " — threading machinery belongs under runtime/ only");
          }
        }
      }
    }

    // --- unordered-iteration (hot-path dirs only) ---
    if (hot && !unordered.empty()) {
      for (const std::string& name : unordered) {
        bool hit = false;
        if (line.find("for") != std::string::npos &&
            line.find(':') != std::string::npos) {
          std::regex range_for("for\\s*\\([^;)]*:\\s*&?\\s*" + name +
                               "\\s*\\)");
          if (std::regex_search(line, range_for)) hit = true;
        }
        for (const char* method : {".begin()", ".cbegin()", ".rbegin()"}) {
          std::size_t p = find_word(line, name);
          if (p != std::string::npos &&
              line.compare(p + name.size(),
                           std::char_traits<char>::length(method),
                           method) == 0) {
            hit = true;
          }
        }
        if (hit) {
          add(lineno, "unordered-iteration",
              "iteration over unordered container '" + name +
                  "' — hash order is not deterministic; iterate a sorted "
                  "structure or an explicit order");
        }
      }
    }

    // --- float-time-compare ---
    if (line.find("to_seconds") != std::string::npos &&
        (line.find("==") != std::string::npos ||
         line.find("!=") != std::string::npos)) {
      add(lineno, "float-time-compare",
          "exact ==/!= comparison of to_seconds() output — compare integer "
          "sim::Time values instead");
    }
    if (line.find("static_cast<float>") != std::string::npos &&
        (line.find("time") != std::string::npos ||
         line.find("Time") != std::string::npos ||
         line.find("now()") != std::string::npos)) {
      add(lineno, "float-time-compare",
          "simulation time narrowed to float — keep integer sim::Time (or "
          "double only for rates)");
    }
  }

  return findings;
}

std::vector<AllowEntry> parse_allowlist(const std::string& text) {
  std::vector<AllowEntry> entries;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim.
    auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
    while (!line.empty() && is_space(line.back())) line.pop_back();
    std::size_t start = 0;
    while (start < line.size() && is_space(line[start])) ++start;
    line.erase(0, start);
    if (line.empty()) continue;
    AllowEntry e;
    std::size_t colon = line.rfind(':');
    if (colon != std::string::npos && colon + 1 < line.size() &&
        line.find('/', colon) == std::string::npos) {
      e.path_suffix = line.substr(0, colon);
      e.rule = line.substr(colon + 1);
    } else {
      e.path_suffix = line;
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

bool is_allowed(const Finding& f, const std::vector<AllowEntry>& entries) {
  for (const AllowEntry& e : entries) {
    if (!e.rule.empty() && e.rule != f.rule) continue;
    if (f.file.size() < e.path_suffix.size()) continue;
    if (f.file.compare(f.file.size() - e.path_suffix.size(),
                       e.path_suffix.size(), e.path_suffix) != 0) {
      continue;
    }
    // Suffix must align on a path-segment boundary ("net/port.cpp" should
    // not match "subnet/port.cpp").
    std::size_t at = f.file.size() - e.path_suffix.size();
    if (at != 0 && f.file[at - 1] != '/') continue;
    return true;
  }
  return false;
}

std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               const std::vector<AllowEntry>& allow) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  // First pass: contents + per-file unordered declarations, so a .cpp can be
  // checked against members declared in its companion header.
  std::map<std::string, std::string> contents;       // rel path -> source
  std::map<std::string, std::vector<std::string>> decls;  // stem -> names
  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string rel = p.lexically_relative(root).generic_string();
    contents[rel] = buf.str();
    fs::path stem = p.lexically_relative(root);
    stem.replace_extension();
    auto& names = decls[stem.generic_string()];
    std::vector<std::string> found = unordered_decl_names(contents[rel]);
    names.insert(names.end(), found.begin(), found.end());
  }

  std::vector<Finding> all;
  for (const auto& [rel, source] : contents) {
    fs::path stem(rel);
    stem.replace_extension();
    const std::vector<std::string>& extra = decls[stem.generic_string()];
    for (Finding& f : lint_source(rel, source, extra)) {
      if (!is_allowed(f, allow)) all.push_back(std::move(f));
    }
  }
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return all;
}

std::string format_findings(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message
       << '\n';
  }
  return os.str();
}

}  // namespace tls::lint
