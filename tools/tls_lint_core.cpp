#include "tls_lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <deque>
#include <fstream>
#include <functional>
#include <map>
#include <regex>
#include <sstream>

namespace tls::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when the token starting at `pos` is a call of a bare (or std::)
/// function: not a suffix of a longer identifier, not a member access
/// (`x.time(`), and not qualified by anything except `std::`.
bool is_banned_call_site(const std::string& line, std::size_t pos) {
  if (pos == 0) return true;
  char prev = line[pos - 1];
  if (is_ident_char(prev) || prev == '.') return false;
  if (prev == ':') {
    // Qualified call: only std::foo( is the banned global.
    return pos >= 5 && line.compare(pos - 5, 5, "std::") == 0;
  }
  return true;
}

/// Finds a whole-word occurrence of `token` in `line` (identifier
/// boundaries on both sides). Returns npos when absent.
std::size_t find_word(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    std::size_t end = pos + token.size();
    bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> segs;
  std::string cur;
  for (char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) segs.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) segs.push_back(cur);
  return segs;
}

/// Hot-path scoping for the unordered-iteration rule. obs/ is included
/// because export iteration order feeds byte-identical trace/metrics files.
bool in_hot_path_dir(const std::string& rel_path) {
  for (const std::string& seg : split_path(rel_path)) {
    if (seg == "net" || seg == "simcore" || seg == "tensorlights" ||
        seg == "obs") {
      return true;
    }
  }
  return false;
}

/// runtime/ is the one sanctioned home of threading primitives: it runs
/// whole (independently seeded, internally single-threaded) simulations in
/// parallel, never threads inside one simulation.
bool in_runtime_dir(const std::string& rel_path) {
  for (const std::string& seg : split_path(rel_path)) {
    if (seg == "runtime") return true;
  }
  return false;
}

/// src/simcore/rng.* is the one sanctioned home of raw generator machinery.
bool is_rng_module(const std::string& rel_path) {
  std::vector<std::string> segs = split_path(rel_path);
  if (segs.empty()) return false;
  const std::string& name = segs.back();
  return name.rfind("rng.", 0) == 0 &&
         (segs.size() < 2 || segs[segs.size() - 2] == "simcore");
}

bool is_header(const std::string& rel_path) {
  return rel_path.size() >= 2 &&
         (rel_path.ends_with(".hpp") || rel_path.ends_with(".h"));
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

/// True when the '"' at `i` opens a raw string literal (R"..., u8R"...,
/// LR"..., ...): the prefix must not be a suffix of a longer identifier.
bool opens_raw_string(const std::string& source, std::size_t i) {
  if (i == 0 || source[i - 1] != 'R') return false;
  std::size_t k = i - 1;  // position of 'R'
  while (k > 0 && (source[k - 1] == 'u' || source[k - 1] == 'U' ||
                   source[k - 1] == 'L' || source[k - 1] == '8')) {
    --k;
  }
  return k == 0 || !is_ident_char(source[k - 1]);
}

/// The shared comment/string scanner. `blank_strings` controls whether
/// string/char literal bodies are blanked too (lint rules: yes; include
/// extraction: no, the include path lives in a string).
std::string strip_impl(const std::string& source, bool blank_strings) {
  std::string out = source;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < source.size(); ++i) {
    char c = source[i];
    char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"' && opens_raw_string(source, i)) {
          // R"delim( ... )delim" — no escapes inside; scan to the matching
          // terminator and (optionally) blank the body, keeping newlines so
          // later findings keep their line numbers.
          std::size_t p = i + 1;
          std::string delim;
          while (p < source.size() && source[p] != '(' && delim.size() < 18) {
            delim.push_back(source[p]);
            ++p;
          }
          std::string term = ")" + delim + "\"";
          std::size_t close = source.find(term, p);
          std::size_t end =
              close == std::string::npos ? source.size() : close + term.size();
          if (blank_strings) {
            for (std::size_t q = i + 1; q < end; ++q) {
              if (out[q] != '\n') out[q] = ' ';
            }
          }
          i = end == 0 ? i : end - 1;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          if (blank_strings) {
            out[i] = ' ';
            if (next != '\n') out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (blank_strings && c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          if (blank_strings) {
            out[i] = ' ';
            if (next != '\n') out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (blank_strings && c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

}  // namespace

std::string strip_comments_and_strings(const std::string& source) {
  return strip_impl(source, /*blank_strings=*/true);
}

std::vector<std::string> unordered_decl_names(const std::string& source) {
  std::string code = strip_comments_and_strings(source);
  std::vector<std::string> names;
  for (const char* token : {"unordered_map", "unordered_set"}) {
    std::size_t pos = 0;
    std::string tok(token);
    while (pos < code.size()) {
      std::size_t hit = code.find(tok, pos);
      if (hit == std::string::npos) break;
      pos = hit + tok.size();
      bool left_ok = hit == 0 || !is_ident_char(code[hit - 1]);
      if (!left_ok) continue;
      // Skip whitespace, expect the template argument list.
      std::size_t i = pos;
      while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) ++i;
      if (i >= code.size() || code[i] != '<') continue;
      int depth = 0;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>') {
          --depth;
          if (depth == 0) {
            ++i;
            break;
          }
        }
      }
      // Optional reference/pointer declarator, then the declared name.
      while (i < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[i])) ||
              code[i] == '&' || code[i] == '*')) {
        ++i;
      }
      std::string name;
      while (i < code.size() && is_ident_char(code[i])) name.push_back(code[i++]);
      // `const` between type and name, e.g. map<K,V> const x — rare; and
      // `::iterator` chains yield no name here, which is what we want.
      if (!name.empty() && name != "const") names.push_back(name);
      pos = i;
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<Finding> lint_source(
    const std::string& rel_path, const std::string& source,
    const std::vector<std::string>& extra_unordered_names) {
  std::vector<Finding> findings;
  auto add = [&](int line, const std::string& rule, const std::string& msg) {
    findings.push_back(Finding{rel_path, line, rule, msg});
  };

  if (is_header(rel_path) && source.find("#pragma once") == std::string::npos) {
    add(0, "missing-pragma-once", "header is missing #pragma once");
  }

  std::string code = strip_comments_and_strings(source);
  std::vector<std::string> lines = split_lines(code);

  std::vector<std::string> unordered = unordered_decl_names(source);
  unordered.insert(unordered.end(), extra_unordered_names.begin(),
                   extra_unordered_names.end());
  std::sort(unordered.begin(), unordered.end());
  unordered.erase(std::unique(unordered.begin(), unordered.end()),
                  unordered.end());

  const bool hot = in_hot_path_dir(rel_path);
  const bool rng_ok = is_rng_module(rel_path);
  const bool threads_ok = in_runtime_dir(rel_path);
  // The units layer itself is where .raw() lives; everywhere else it is an
  // escape from the compile-time unit checks.
  const bool units_ok = rel_path.ends_with("simcore/strong.hpp") ||
                        rel_path.ends_with("simcore/time.hpp") ||
                        rel_path.ends_with("net/units.hpp");

  static const char* kWallClockTokens[] = {
      "system_clock", "steady_clock", "high_resolution_clock", "gettimeofday",
      "clock_gettime", "localtime", "gmtime"};
  static const char* kWallClockCalls[] = {"time", "clock"};
  static const char* kRngTokens[] = {"random_device", "mt19937", "minstd_rand",
                                     "default_random_engine", "ranlux24",
                                     "ranlux48", "knuth_b", "drand48",
                                     "lrand48", "random_shuffle"};
  static const char* kRngCalls[] = {"rand", "srand"};
  // Matched only as std::-qualified names: bare words like "thread" or
  // "future" are too common as local identifiers.
  static const char* kThreadingTypes[] = {
      "thread", "jthread", "mutex", "timed_mutex", "recursive_mutex",
      "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
      "condition_variable", "condition_variable_any", "atomic", "atomic_flag",
      "future", "shared_future", "promise", "async", "lock_guard",
      "unique_lock", "scoped_lock", "shared_lock", "call_once", "once_flag",
      "counting_semaphore", "binary_semaphore", "latch", "barrier"};
  static const char* kThreadingHeaders[] = {
      "<thread>", "<mutex>", "<shared_mutex>", "<condition_variable>",
      "<atomic>", "<future>", "<semaphore>", "<latch>", "<barrier>",
      "<stop_token>"};

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    int lineno = static_cast<int>(li) + 1;

    // --- wall-clock ---
    for (const char* tok : kWallClockTokens) {
      if (find_word(line, tok) != std::string::npos) {
        add(lineno, "wall-clock",
            std::string("host clock access '") + tok +
                "' — simulation time must come from Simulator::now()");
      }
    }
    for (const char* fn : kWallClockCalls) {
      std::string call = std::string(fn) + "(";
      std::size_t pos = 0;
      while ((pos = line.find(call, pos)) != std::string::npos) {
        if (is_banned_call_site(line, pos)) {
          add(lineno, "wall-clock",
              std::string("call of '") + fn +
                  "()' — simulation time must come from Simulator::now()");
          break;
        }
        pos += call.size();
      }
    }

    // --- banned-rng ---
    if (!rng_ok) {
      for (const char* tok : kRngTokens) {
        if (find_word(line, tok) != std::string::npos) {
          add(lineno, "banned-rng",
              std::string("raw generator '") + tok +
                  "' — draw from a tls::sim::Rng stream instead");
        }
      }
      for (const char* fn : kRngCalls) {
        std::string call = std::string(fn) + "(";
        std::size_t pos = 0;
        while ((pos = line.find(call, pos)) != std::string::npos) {
          if (is_banned_call_site(line, pos)) {
            add(lineno, "banned-rng",
                std::string("call of '") + fn +
                    "()' — draw from a tls::sim::Rng stream instead");
            break;
          }
          pos += call.size();
        }
      }
      // Default-seeded sim::Rng construction (`Rng()` / `Rng{}`): every
      // generator outside the rng module must take an explicit seed or be
      // fork()ed from a seeded stream — the default seed silently
      // correlates draws across unrelated components. Plain member
      // declarations (`sim::Rng rng_;`) are fine: they are re-seeded in a
      // constructor initializer list.
      {
        std::size_t pos = 0;
        while ((pos = line.find("Rng", pos)) != std::string::npos) {
          std::size_t end = pos + 3;
          bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
          bool right_ok = end >= line.size() || !is_ident_char(line[end]);
          if (left_ok && right_ok) {
            std::size_t j = end;
            while (j < line.size() && line[j] == ' ') ++j;
            if (j + 1 < line.size() && ((line[j] == '(' && line[j + 1] == ')') ||
                                        (line[j] == '{' && line[j + 1] == '}'))) {
              add(lineno, "banned-rng",
                  "default-seeded sim::Rng — pass an explicit seed or fork() "
                  "from the experiment's root stream");
            }
          }
          pos = end;
        }
      }
    }

    // --- threading-outside-runtime ---
    if (!threads_ok) {
      for (const char* tok : kThreadingTypes) {
        // All whole-word occurrences, accepted only when std::-qualified.
        std::string t(tok);
        std::size_t pos = 0;
        bool hit = false;
        while (!hit && (pos = line.find(t, pos)) != std::string::npos) {
          std::size_t end = pos + t.size();
          bool right_ok = end >= line.size() || !is_ident_char(line[end]);
          bool qualified =
              pos >= 5 && line.compare(pos - 5, 5, "std::") == 0 &&
              (pos == 5 || !is_ident_char(line[pos - 6]));
          if (right_ok && qualified) hit = true;
          pos = end;
        }
        if (hit) {
          add(lineno, "threading-outside-runtime",
              std::string("threading primitive 'std::") + tok +
                  "' — the simulator core is single-threaded by contract; "
                  "only tls::runtime may spawn or synchronize threads");
        }
      }
      if (line.find("#include") != std::string::npos) {
        for (const char* hdr : kThreadingHeaders) {
          if (line.find(hdr) != std::string::npos) {
            add(lineno, "threading-outside-runtime",
                std::string("include of ") + hdr +
                    " — threading machinery belongs under runtime/ only");
          }
        }
      }
    }

    // --- unordered-iteration (hot-path dirs only) ---
    if (hot && !unordered.empty()) {
      for (const std::string& name : unordered) {
        bool hit = false;
        if (line.find("for") != std::string::npos &&
            line.find(':') != std::string::npos) {
          std::regex range_for("for\\s*\\([^;)]*:\\s*&?\\s*" + name +
                               "\\s*\\)");
          if (std::regex_search(line, range_for)) hit = true;
        }
        for (const char* method : {".begin()", ".cbegin()", ".rbegin()"}) {
          std::size_t p = find_word(line, name);
          if (p != std::string::npos &&
              line.compare(p + name.size(),
                           std::char_traits<char>::length(method),
                           method) == 0) {
            hit = true;
          }
        }
        if (hit) {
          add(lineno, "unordered-iteration",
              "iteration over unordered container '" + name +
                  "' — hash order is not deterministic; iterate a sorted "
                  "structure or an explicit order");
        }
      }
    }

    // --- unit-escape ---
    if (!units_ok) {
      std::size_t pos = 0;
      while ((pos = line.find(".raw(", pos)) != std::string::npos) {
        // Member access on something: an identifier, ')' or ']' before the
        // dot. A leading ".raw(" on a continuation line counts too.
        bool member = pos == 0 || is_ident_char(line[pos - 1]) ||
                      line[pos - 1] == ')' || line[pos - 1] == ']';
        if (member) {
          add(lineno, "unit-escape",
              "raw-value escape '.raw()' outside the units layer — use the "
              "typed helpers in net/units.hpp (bytes_in, seconds_for, "
              "to_double, ...) or allowlist the serialization boundary with "
              "a justification");
          break;
        }
        pos += 5;
      }
    }

    // --- float-time-compare ---
    if (line.find("to_seconds") != std::string::npos &&
        (line.find("==") != std::string::npos ||
         line.find("!=") != std::string::npos)) {
      add(lineno, "float-time-compare",
          "exact ==/!= comparison of to_seconds() output — compare integer "
          "sim::Time values instead");
    }
    if (line.find("static_cast<float>") != std::string::npos &&
        (line.find("time") != std::string::npos ||
         line.find("Time") != std::string::npos ||
         line.find("now()") != std::string::npos)) {
      add(lineno, "float-time-compare",
          "simulation time narrowed to float — keep integer sim::Time (or "
          "double only for rates)");
    }
  }

  return findings;
}

std::vector<AllowEntry> parse_allowlist(const std::string& text) {
  std::vector<AllowEntry> entries;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim.
    auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
    while (!line.empty() && is_space(line.back())) line.pop_back();
    std::size_t start = 0;
    while (start < line.size() && is_space(line[start])) ++start;
    line.erase(0, start);
    if (line.empty()) continue;
    AllowEntry e;
    std::size_t colon = line.rfind(':');
    if (colon != std::string::npos && colon + 1 < line.size() &&
        line.find('/', colon) == std::string::npos) {
      e.path_suffix = line.substr(0, colon);
      e.rule = line.substr(colon + 1);
    } else {
      e.path_suffix = line;
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

bool is_allowed(const Finding& f, const std::vector<AllowEntry>& entries) {
  for (const AllowEntry& e : entries) {
    if (!e.rule.empty() && e.rule != f.rule) continue;
    if (f.file.size() < e.path_suffix.size()) continue;
    if (f.file.compare(f.file.size() - e.path_suffix.size(),
                       e.path_suffix.size(), e.path_suffix) != 0) {
      continue;
    }
    // Suffix must align on a path-segment boundary ("net/port.cpp" should
    // not match "subnet/port.cpp").
    std::size_t at = f.file.size() - e.path_suffix.size();
    if (at != 0 && f.file[at - 1] != '/') continue;
    return true;
  }
  return false;
}

std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               const std::vector<AllowEntry>& allow) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  // First pass: contents + per-file unordered declarations, so a .cpp can be
  // checked against members declared in its companion header.
  std::map<std::string, std::string> contents;       // rel path -> source
  std::map<std::string, std::vector<std::string>> decls;  // stem -> names
  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string rel = p.lexically_relative(root).generic_string();
    contents[rel] = buf.str();
    fs::path stem = p.lexically_relative(root);
    stem.replace_extension();
    auto& names = decls[stem.generic_string()];
    std::vector<std::string> found = unordered_decl_names(contents[rel]);
    names.insert(names.end(), found.begin(), found.end());
  }

  std::vector<Finding> all;
  for (const auto& [rel, source] : contents) {
    fs::path stem(rel);
    stem.replace_extension();
    const std::vector<std::string>& extra = decls[stem.generic_string()];
    for (Finding& f : lint_source(rel, source, extra)) {
      if (!is_allowed(f, allow)) all.push_back(std::move(f));
    }
  }
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return all;
}

std::string format_findings(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message
       << '\n';
  }
  return os.str();
}

namespace {

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

std::string findings_to_json(const std::vector<Finding>& findings) {
  std::ostringstream os;
  if (findings.empty()) return "[]\n";
  os << "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "  {\"file\": \"";
    json_escape(os, f.file);
    os << "\", \"line\": " << f.line << ", \"rule\": \"";
    json_escape(os, f.rule);
    os << "\", \"message\": \"";
    json_escape(os, f.message);
    os << "\"}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "]\n";
  return os.str();
}

std::vector<AllowEntry> stale_allow_entries(
    const std::vector<AllowEntry>& entries,
    const std::vector<Finding>& findings) {
  std::vector<AllowEntry> stale;
  for (const AllowEntry& e : entries) {
    bool used = false;
    for (const Finding& f : findings) {
      if (is_allowed(f, {e})) {
        used = true;
        break;
      }
    }
    if (!used) stale.push_back(e);
  }
  return stale;
}

// ---------------------------------------------------------------------------
// Include-layer DAG checking.
// ---------------------------------------------------------------------------

namespace {

/// Top-level module directory of a '/'-separated relative path; empty for
/// paths with no directory (same-directory includes, root-level files).
std::string module_of(const std::string& path) {
  std::size_t slash = path.find('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string join_list(const std::vector<std::string>& xs) {
  std::string out;
  for (const std::string& x : xs) {
    if (!out.empty()) out += ", ";
    out += x;
  }
  return out.empty() ? "nothing" : out;
}

/// True when `path` ends with `suffix` on a '/' segment boundary.
bool suffix_matches(const std::string& path, const std::string& suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  std::size_t at = path.size() - suffix.size();
  return at == 0 || path[at - 1] == '/';
}

/// BFS over actual include edges from `start` to any file in
/// `target_module`; the returned chain starts at `start` and ends inside the
/// target module (empty when unreachable). Proves that a layering violation
/// closes a real include cycle.
std::vector<std::string> include_chain_to_module(
    const std::map<std::string, std::vector<Include>>& includes,
    const std::string& start, const std::string& target_module) {
  std::map<std::string, std::string> prev;
  std::deque<std::string> queue{start};
  prev[start] = "";
  while (!queue.empty()) {
    std::string cur = queue.front();
    queue.pop_front();
    if (module_of(cur) == target_module) {
      std::vector<std::string> chain;
      for (std::string n = cur; !n.empty(); n = prev[n]) chain.push_back(n);
      std::reverse(chain.begin(), chain.end());
      return chain;
    }
    auto it = includes.find(cur);
    if (it == includes.end()) continue;
    for (const Include& inc : it->second) {
      if (!prev.count(inc.path)) {
        prev[inc.path] = cur;
        queue.push_back(inc.path);
      }
    }
  }
  return {};
}

}  // namespace

std::vector<Include> parse_includes(const std::string& source) {
  // Strip comments but keep string bodies: the include path *is* a string.
  std::string code = strip_impl(source, /*blank_strings=*/false);
  std::vector<Include> out;
  std::vector<std::string> lines = split_lines(code);
  static const std::regex kInclude("^\\s*#\\s*include\\s+\"([^\"]+)\"");
  std::smatch m;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i], m, kInclude)) {
      out.push_back(Include{m[1].str(), static_cast<int>(i) + 1});
    }
  }
  return out;
}

LayerManifest parse_layer_manifest(const std::string& text) {
  LayerManifest m;
  std::vector<std::string> lines = split_lines(text);
  auto trim = [](std::string s) {
    auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
    while (!s.empty() && is_space(s.back())) s.pop_back();
    std::size_t start = 0;
    while (start < s.size() && is_space(s[start])) ++start;
    return s.substr(start);
  };
  auto split_ws = [](const std::string& s) {
    std::vector<std::string> out;
    std::istringstream in(s);
    std::string tok;
    while (in >> tok) out.push_back(tok);
    return out;
  };
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    int lineno = static_cast<int>(i) + 1;
    if (line.rfind("module ", 0) == 0) {
      std::string rest = line.substr(7);
      std::size_t colon = rest.find(':');
      if (colon == std::string::npos) {
        m.errors.push_back("line " + std::to_string(lineno) +
                           ": 'module <name>:' needs a colon");
        continue;
      }
      std::string name = trim(rest.substr(0, colon));
      if (name.empty() || split_ws(name).size() != 1) {
        m.errors.push_back("line " + std::to_string(lineno) +
                           ": bad module name '" + name + "'");
        continue;
      }
      if (m.deps.count(name)) {
        m.errors.push_back("line " + std::to_string(lineno) + ": module '" +
                           name + "' declared twice");
        continue;
      }
      m.deps[name] = split_ws(rest.substr(colon + 1));
      m.module_line[name] = lineno;
    } else if (line.rfind("allow ", 0) == 0) {
      std::string rest = line.substr(6);
      std::size_t arrow = rest.find("->");
      if (arrow == std::string::npos) {
        m.errors.push_back("line " + std::to_string(lineno) +
                           ": 'allow <file> -> <path>' needs '->'");
        continue;
      }
      std::string from = trim(rest.substr(0, arrow));
      std::string to = trim(rest.substr(arrow + 2));
      if (from.empty() || to.empty()) {
        m.errors.push_back("line " + std::to_string(lineno) +
                           ": 'allow' needs both sides");
        continue;
      }
      m.file_grants.emplace_back(from, to);
    } else {
      m.errors.push_back("line " + std::to_string(lineno) +
                         ": unknown directive '" + line + "'");
    }
  }
  for (const auto& [name, deps] : m.deps) {
    for (const std::string& dep : deps) {
      if (dep == name) {
        m.errors.push_back("module '" + name + "' depends on itself");
      } else if (!m.deps.count(dep)) {
        m.errors.push_back("module '" + name +
                           "' depends on undeclared module '" + dep + "'");
      }
    }
  }
  return m;
}

std::vector<Finding> check_layer_graph(
    const std::map<std::string, std::vector<Include>>& includes,
    const LayerManifest& manifest) {
  std::vector<Finding> out;

  // The manifest's own module graph must be a DAG; report the first cycle
  // with its chain so the back-edge is obvious.
  {
    std::map<std::string, int> color;  // 0 unseen, 1 on stack, 2 done
    std::vector<std::string> stack;
    std::function<bool(const std::string&)> dfs =
        [&](const std::string& u) -> bool {
      color[u] = 1;
      stack.push_back(u);
      for (const std::string& dep : manifest.deps.at(u)) {
        if (!manifest.deps.count(dep)) continue;
        if (color[dep] == 1) {
          std::string chain = dep;
          std::size_t at = 0;
          while (at < stack.size() && stack[at] != dep) ++at;
          for (std::size_t i = at + 1; i < stack.size(); ++i) {
            chain += " -> " + stack[i];
          }
          chain += " -> " + dep;
          int line = 0;
          auto it = manifest.module_line.find(dep);
          if (it != manifest.module_line.end()) line = it->second;
          out.push_back(Finding{
              "tools/layers.txt", line, "layer-dag",
              "module grant cycle in the layer manifest: " + chain});
          return true;
        }
        if (color[dep] == 0 && dfs(dep)) return true;
      }
      stack.pop_back();
      color[u] = 2;
      return false;
    };
    for (const auto& [name, deps] : manifest.deps) {
      (void)deps;
      if (color[name] == 0 && dfs(name)) break;
    }
  }

  // Every module on disk must be declared (an undeclared module would
  // silently bypass the layering).
  std::map<std::string, std::string> undeclared;  // module -> first file
  for (const auto& [file, incs] : includes) {
    (void)incs;
    std::string mod = module_of(file);
    if (mod.empty() || manifest.deps.count(mod)) continue;
    if (!undeclared.count(mod)) undeclared[mod] = file;
  }
  for (const auto& [mod, file] : undeclared) {
    out.push_back(Finding{file, 0, "layer-dag",
                          "module '" + mod +
                              "' is not declared in the layer manifest "
                              "(tools/layers.txt)"});
  }

  // Each cross-module include edge must be granted.
  for (const auto& [file, incs] : includes) {
    std::string from = module_of(file);
    if (from.empty() || !manifest.deps.count(from)) continue;
    const std::vector<std::string>& granted = manifest.deps.at(from);
    for (const Include& inc : incs) {
      std::string to = module_of(inc.path);
      if (to.empty() || to == from) continue;
      // External quoted includes (not a scanned file, not a declared
      // module) are outside the layering's jurisdiction.
      if (!includes.count(inc.path) && !manifest.deps.count(to)) continue;
      bool ok = std::find(granted.begin(), granted.end(), to) != granted.end();
      if (!ok) {
        for (const auto& [grant_from, grant_to] : manifest.file_grants) {
          if (inc.path == grant_to && suffix_matches(file, grant_from)) {
            ok = true;
            break;
          }
        }
      }
      if (ok) continue;
      std::string msg = "include \"" + inc.path + "\": layer '" + from +
                        "' may not depend on '" + to +
                        "' (granted: " + join_list(granted) + ")";
      std::vector<std::string> chain =
          include_chain_to_module(includes, inc.path, from);
      if (!chain.empty()) {
        msg += "; closes the include cycle " + file;
        for (const std::string& n : chain) msg += " -> " + n;
      }
      out.push_back(Finding{file, inc.line, "layer-dag", msg});
    }
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<Finding> check_layer_tree(const std::filesystem::path& root,
                                      const LayerManifest& manifest) {
  namespace fs = std::filesystem;
  std::map<std::string, std::vector<Include>> includes;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".h" && ext != ".cpp" && ext != ".cc") {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string rel = entry.path().lexically_relative(root).generic_string();
    includes[rel] = parse_includes(buf.str());
  }
  return check_layer_graph(includes, manifest);
}

}  // namespace tls::lint
