// tlsreport — post-hoc straggler root-cause attribution for tlsim traces.
// All logic lives in obs::run_report_cli (src/obs/report_cli.cpp) so the
// test suite exercises it in-process.
#include <iostream>

#include "obs/report_cli.hpp"

int main(int argc, char** argv) {
  return tls::obs::run_report_cli(argc, argv, std::cout, std::cerr);
}
