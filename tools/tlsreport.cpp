// tlsreport — post-hoc straggler root-cause attribution for tlsim traces.
// All logic lives in obs::run_report_cli (src/obs/report_cli.cpp) so the
// test suite exercises it in-process. The one thing injected here is the
// --follow poll sleeper: the obs library stays wall-clock-free (see
// tls_lint), so the real pause between polls lives in the tool binary.
#include <chrono>
#include <iostream>
#include <thread>

#include "obs/report_cli.hpp"

int main(int argc, char** argv) {
  tls::obs::ReportCliHooks hooks;
  hooks.sleep_ms = [](int ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  };
  return tls::obs::run_report_cli(argc, argv, std::cout, std::cerr, hooks);
}
