// Determinism lint for the TensorLights simulator sources.
//
// Every figure and table this repo reproduces depends on tls::net being a
// *deterministic* chunk-level simulator: two runs with the same seed must
// produce byte-identical metrics. The classic ways that property silently
// rots are wall-clock reads, unseeded/global RNGs, and iteration order of
// hash containers leaking into scheduling decisions. This lint scans the
// source tree for those patterns and fails the build (it is registered as a
// ctest) when one appears outside the allowlist.
//
// Rules (rule ids are stable; use them in the allowlist):
//   wall-clock          std::chrono::{system,steady,high_resolution}_clock,
//                       time(), clock(), gettimeofday, clock_gettime.
//                       Simulation time comes from Simulator::now(), never
//                       from the host.
//   banned-rng          rand()/srand(), std::random_device, mt19937 and
//                       friends anywhere except src/simcore/rng.* — all
//                       randomness must flow through tls::sim::Rng streams.
//                       Also flags default-seeded construction (`Rng()` /
//                       `Rng{}`) outside src/simcore/rng.*: a generator
//                       must be given an explicit seed or fork()ed from a
//                       seeded stream, otherwise every default-constructed
//                       Rng silently produces the same correlated draws.
//                       Plain declarations (`sim::Rng rng_;`) stay legal —
//                       they are re-seeded in constructor initializers.
//   unordered-iteration range-for or .begin() iteration over a member
//                       declared as std::unordered_map/unordered_set in the
//                       hot-path directories (src/net, src/simcore,
//                       src/tensorlights, src/obs). Hash-order is not stable
//                       across libstdc++ versions or pointer layouts; iterate
//                       a sorted structure or an explicit order instead.
//                       src/obs is hot-path because exporter iteration order
//                       is what makes trace/metrics files byte-identical.
//   float-time-compare  exact ==/!= comparison of to_seconds() results or
//                       float-cast simulation times; compare integer
//                       sim::Time values instead.
//   missing-pragma-once a header without #pragma once.
//   threading-outside-runtime
//                       std::thread/mutex/atomic/condition_variable/future
//                       machinery (or including their headers) anywhere
//                       except under a runtime/ directory. The simulator
//                       core is single-threaded by contract — determinism
//                       comes from one event loop, one RNG stream per
//                       consumer, and no cross-thread interleavings;
//                       tls::runtime is the one sanctioned place that fans
//                       whole simulations across threads.
//   unit-escape         .raw() on a strong unit type (sim::Time, net::Bytes,
//                       net::Rate, net::HostId, net::BandId) outside the
//                       units layer itself (simcore/strong.hpp,
//                       simcore/time.hpp, net/units.hpp). Escaping to the
//                       raw representation defeats the compile-time unit
//                       checks; use the typed helpers (bytes_in,
//                       seconds_for, transmit_time, to_double, ...) or add
//                       an allowlist entry documenting the serialization
//                       boundary that genuinely needs the raw value.
//   layer-dag           an #include edge that violates the module layering
//                       declared in tools/layers.txt (see
//                       parse_layer_manifest below), or a cycle in the
//                       manifest itself. Checked by check_layer_tree, which
//                       the tls_lint driver runs under --layers.
//
// Comments and string literals are stripped before matching, so documenting
// a banned pattern is fine. The scanner is line-based and intentionally
// simple; the allowlist (tools/tls_lint_allow.txt) is the escape hatch for
// legitimate uses (e.g. a benchmark timing real elapsed wall time).
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace tls::lint {

/// One rule violation at a source location.
struct Finding {
  std::string file;     ///< path as reported (relative to the scan root)
  int line = 0;         ///< 1-based; 0 means "whole file"
  std::string rule;     ///< stable rule id, e.g. "wall-clock"
  std::string message;  ///< human-readable explanation
};

/// One allowlist entry: `path_suffix` silences every rule in matching files,
/// `path_suffix:rule` silences only that rule.
struct AllowEntry {
  std::string path_suffix;
  std::string rule;  ///< empty = all rules
};

/// Parses allowlist text: one entry per line, `#` comments, blank lines
/// ignored. Entry syntax: `<path-suffix>[:<rule>]`.
std::vector<AllowEntry> parse_allowlist(const std::string& text);

/// True when `entries` silences `f`.
bool is_allowed(const Finding& f, const std::vector<AllowEntry>& entries);

/// Replaces comments and string/char literal bodies with spaces, preserving
/// line structure so findings keep their line numbers.
std::string strip_comments_and_strings(const std::string& source);

/// Collects names of variables/members declared with an unordered container
/// type in `source` (e.g. `std::unordered_map<FlowId, FlowQueue> flows_;`
/// yields "flows_"). Using-aliases contribute no names.
std::vector<std::string> unordered_decl_names(const std::string& source);

/// Lints one file's contents. `rel_path` is used for reporting and for the
/// path-based rule scoping (hot-path dirs, the rng exemption); use
/// '/'-separated paths. `extra_unordered_names` supplements the names found
/// in `source` itself (callers pass the companion header's declarations when
/// linting a .cpp).
std::vector<Finding> lint_source(const std::string& rel_path,
                                 const std::string& source,
                                 const std::vector<std::string>&
                                     extra_unordered_names = {});

/// Recursively lints every .hpp/.h/.cpp/.cc file under `root`, applying the
/// allowlist. Findings are sorted by (file, line, rule) so output order is
/// itself deterministic.
std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               const std::vector<AllowEntry>& allow);

/// Renders findings in "file:line: [rule] message" form, one per line.
std::string format_findings(const std::vector<Finding>& findings);

/// Renders findings as a JSON array of {"file","line","rule","message"}
/// objects, one per line, sorted like format_findings. "[]\n" when empty.
std::string findings_to_json(const std::vector<Finding>& findings);

/// Allowlist entries that silence nothing in `findings` (which must have
/// been produced with an *empty* allowlist): stale entries whose source
/// lines were fixed or deleted. tls_lint --prune-allowlist fails on these
/// so the allowlist can only shrink back toward empty.
std::vector<AllowEntry> stale_allow_entries(
    const std::vector<AllowEntry>& entries,
    const std::vector<Finding>& findings);

// ---------------------------------------------------------------------------
// Include-layer DAG checking (rule "layer-dag").
//
// tools/layers.txt declares the allowed module-dependency graph of src/.
// A module is a top-level directory under the scan root (src/net -> "net").
// Manifest syntax, one directive per line, '#' comments:
//
//   module <name>: <dep> <dep> ...   files under <name>/ may #include from
//                                    <dep>/ (and from <name>/ itself);
//                                    list a module below its dependents
//   allow <file> -> <path>           file-scoped exception: the file whose
//                                    path ends with <file> may include
//                                    exactly <path> despite the layering
//
// The checker fails on: a cycle among the module grants (the manifest must
// itself be a DAG — the cycle chain is printed), an include edge into a
// module the including module was not granted (when the reverse reach
// exists, the file-level include cycle is printed), and a module on disk
// that the manifest does not list.
// ---------------------------------------------------------------------------

/// One quoted #include directive ("..."; <system> includes are ignored).
struct Include {
  std::string path;  ///< as written, e.g. "net/units.hpp"
  int line = 0;      ///< 1-based
};

/// Extracts the quoted #include directives from `source`, in order.
/// Comments are stripped first so a commented-out include does not count.
std::vector<Include> parse_includes(const std::string& source);

/// A parsed tools/layers.txt.
struct LayerManifest {
  /// module -> modules it may include from (not transitively closed).
  std::map<std::string, std::vector<std::string>> deps;
  /// module -> manifest line it was declared on (for reporting).
  std::map<std::string, int> module_line;
  /// file-scoped grants: (including-file path suffix, included path).
  std::vector<std::pair<std::string, std::string>> file_grants;
  /// parse/validation problems; a non-empty list means the manifest is
  /// broken and layer results are not meaningful.
  std::vector<std::string> errors;
};

/// Parses manifest text. Unknown directives and deps on undeclared modules
/// land in .errors.
LayerManifest parse_layer_manifest(const std::string& text);

/// Checks every include edge against the manifest. `includes` maps each
/// file's '/'-separated root-relative path to its quoted includes (the
/// synthetic-fixture entry point for tests). Findings use rule "layer-dag"
/// and are sorted by (file, line, rule).
std::vector<Finding> check_layer_graph(
    const std::map<std::string, std::vector<Include>>& includes,
    const LayerManifest& manifest);

/// Reads every .hpp/.h/.cpp/.cc under `root` and runs check_layer_graph.
std::vector<Finding> check_layer_tree(const std::filesystem::path& root,
                                      const LayerManifest& manifest);

}  // namespace tls::lint
