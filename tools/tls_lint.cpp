// Determinism + layering lint driver. Usage:
//   tls_lint <source-root> [--allowlist FILE] [--layers FILE]
//            [--json FILE] [--prune-allowlist]
// Scans every C++ file under <source-root> for the banned patterns
// documented in tls_lint_core.hpp and — with --layers — checks the
// #include graph against the module-layer manifest. Exits nonzero when any
// finding is not covered by the allowlist. Registered as the `tls_lint`
// ctest, so a determinism or layering hazard fails the build the same way a
// failing unit test does.
//
//   --json FILE        also write the (post-allowlist) findings as a JSON
//                      array; CI archives it next to the BENCH_*.json
//                      artifacts so regressions are diffable.
//   --prune-allowlist  additionally fail when an allowlist entry no longer
//                      silences anything — the allowlist may only shrink
//                      back toward empty, never accrete stale exemptions.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "tls_lint_core.hpp"

namespace {

constexpr const char* kUsage =
    "usage: tls_lint <source-root> [--allowlist FILE] [--layers FILE] "
    "[--json FILE] [--prune-allowlist]\n";

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string allow_path;
  std::string layers_path;
  std::string json_path;
  bool prune = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "tls_lint: " << flag << " needs a file argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--allowlist") {
      allow_path = value("--allowlist");
    } else if (arg == "--layers") {
      layers_path = value("--layers");
    } else if (arg == "--json") {
      json_path = value("--json");
    } else if (arg == "--prune-allowlist") {
      prune = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (root.empty()) {
      root = arg;
    } else {
      std::cerr << "tls_lint: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  std::vector<tls::lint::AllowEntry> allow;
  if (!allow_path.empty()) {
    std::string text;
    if (!read_file(allow_path, &text)) {
      std::cerr << "tls_lint: cannot read allowlist '" << allow_path << "'\n";
      return 2;
    }
    allow = tls::lint::parse_allowlist(text);
  }

  // Collect every finding *before* the allowlist so --prune-allowlist can
  // tell which entries still earn their keep.
  std::vector<tls::lint::Finding> all;
  try {
    all = tls::lint::lint_tree(root, {});
  } catch (const std::exception& e) {
    std::cerr << "tls_lint: cannot scan '" << root << "': " << e.what()
              << "\n";
    return 2;
  }

  if (!layers_path.empty()) {
    std::string text;
    if (!read_file(layers_path, &text)) {
      std::cerr << "tls_lint: cannot read layer manifest '" << layers_path
                << "'\n";
      return 2;
    }
    tls::lint::LayerManifest manifest = tls::lint::parse_layer_manifest(text);
    if (!manifest.errors.empty()) {
      for (const std::string& e : manifest.errors) {
        std::cerr << "tls_lint: " << layers_path << ": " << e << "\n";
      }
      return 2;
    }
    std::vector<tls::lint::Finding> layer =
        tls::lint::check_layer_tree(root, manifest);
    all.insert(all.end(), layer.begin(), layer.end());
  }

  std::sort(all.begin(), all.end(),
            [](const tls::lint::Finding& a, const tls::lint::Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  std::vector<tls::lint::Finding> findings;
  for (tls::lint::Finding& f : all) {
    if (!tls::lint::is_allowed(f, allow)) findings.push_back(std::move(f));
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "tls_lint: cannot write '" << json_path << "'\n";
      return 2;
    }
    out << tls::lint::findings_to_json(findings);
  }

  int rc = 0;
  if (prune) {
    std::vector<tls::lint::AllowEntry> stale =
        tls::lint::stale_allow_entries(allow, all);
    if (!stale.empty()) {
      for (const tls::lint::AllowEntry& e : stale) {
        std::cout << "stale allowlist entry: " << e.path_suffix;
        if (!e.rule.empty()) std::cout << ':' << e.rule;
        std::cout << " (silences nothing; delete it)\n";
      }
      rc = 1;
    }
  }

  if (!findings.empty()) {
    std::cout << tls::lint::format_findings(findings);
    std::cout << "tls_lint: " << findings.size()
              << " finding(s); fix them or add an entry to the allowlist "
                 "with a justification\n";
    rc = 1;
  } else if (rc == 0) {
    std::cout << "tls_lint: clean (" << root << ")\n";
  }
  return rc;
}
