// Determinism lint driver. Usage:
//   tls_lint <source-root> [--allowlist FILE]
// Scans every C++ file under <source-root> for the banned patterns
// documented in tls_lint_core.hpp and exits nonzero when any finding is not
// covered by the allowlist. Registered as the `tls_lint` ctest, so a
// determinism hazard fails the build the same way a failing unit test does.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "tls_lint_core.hpp"

int main(int argc, char** argv) {
  std::string root;
  std::string allow_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--allowlist") {
      if (i + 1 >= argc) {
        std::cerr << "tls_lint: --allowlist needs a file argument\n";
        return 2;
      }
      allow_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: tls_lint <source-root> [--allowlist FILE]\n";
      return 0;
    } else if (root.empty()) {
      root = arg;
    } else {
      std::cerr << "tls_lint: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << "usage: tls_lint <source-root> [--allowlist FILE]\n";
    return 2;
  }

  std::vector<tls::lint::AllowEntry> allow;
  if (!allow_path.empty()) {
    std::ifstream in(allow_path, std::ios::binary);
    if (!in) {
      std::cerr << "tls_lint: cannot read allowlist '" << allow_path << "'\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    allow = tls::lint::parse_allowlist(buf.str());
  }

  std::vector<tls::lint::Finding> findings;
  try {
    findings = tls::lint::lint_tree(root, allow);
  } catch (const std::exception& e) {
    std::cerr << "tls_lint: cannot scan '" << root << "': " << e.what() << "\n";
    return 2;
  }
  if (findings.empty()) {
    std::cout << "tls_lint: clean (" << root << ")\n";
    return 0;
  }
  std::cout << tls::lint::format_findings(findings);
  std::cout << "tls_lint: " << findings.size()
            << " determinism finding(s); fix them or add an entry to the "
               "allowlist with a justification\n";
  return 1;
}
