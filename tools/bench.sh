#!/usr/bin/env bash
# Bench trajectory driver: builds and runs every BENCH-json-emitting
# harness in bench/ and collects the BENCH_<name>.json timing files into
# the repo root, where they are committed so the performance trajectory
# of each bench is tracked across revisions.
#
# Usage: tools/bench.sh [filter-regex]
#   tools/bench.sh            # run everything (a few minutes at defaults)
#   tools/bench.sh 'fig5|attribution'
#
# Scale knobs pass through to the harnesses: TLS_BENCH_ITERS (default 60),
# TLS_BENCH_SEED, TLS_BENCH_JOBS, TLS_CACHE_DIR (set it to make re-runs of
# unchanged benches near-instant).
#
# bench_micro is excluded: it is a google-benchmark harness with its own
# output format and emits no BENCH json.
set -euo pipefail
cd "$(dirname "$0")/.."
root=$PWD
filter=${1:-.}

run() { echo; echo ">>> $*"; "$@"; }

[ -d build ] || run cmake --preset default
run cmake --build build -j"$(nproc)" --target \
  $(ls bench/bench_*.cpp | sed -e 's|bench/||' -e 's|\.cpp$||' \
    | grep -v '^bench_micro$')

status=0
for bin in build/bench/bench_*; do
  name=$(basename "$bin")
  [ "$name" = bench_micro ] && continue
  echo "$name" | grep -Eq "$filter" || continue
  if ! run env TLS_BENCH_JSON_DIR="$root" "$bin"; then
    echo "FAILED: $name" >&2
    status=1
  fi
done

echo
echo "timing files:"
ls -l "$root"/BENCH_*.json
exit $status
