#!/usr/bin/env bash
# CI driver: sanitizer pass first (cheapest way to surface memory/UB bugs
# with full context), then the warnings-clean RelWithDebInfo tier-1 suite
# that gates every PR. Run from anywhere; paths resolve to the repo root.
set -euo pipefail

root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$root"

jobs="$(nproc 2>/dev/null || echo 4)"

echo "==> [1/4] debug-asan: build + ctest (AddressSanitizer, recover=off)"
cmake --preset debug-asan
cmake --build --preset debug-asan -j "$jobs"
ctest --preset debug-asan -j "$jobs"

smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT

echo "==> [2/4] determinism + unit-escape + layer-DAG lint over src/"
# The JSON findings dump is archived next to the BENCH_*.json artifacts so
# a lint regression is diffable like a perf regression.
./build-asan/tools/tls_lint src --allowlist tools/tls_lint_allow.txt \
  --layers tools/layers.txt --prune-allowlist \
  --json "$smoke_dir/LINT_findings.json"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "==> [2b/4] clang-tidy (.clang-tidy profile, compile_commands.json)"
  clang-tidy -p build-asan src/simcore/*.cpp src/net/*.cpp tools/*.cpp
else
  echo "==> [2b/4] clang-tidy not installed; skipping (profile: .clang-tidy)"
fi

echo "==> [2c/4] trace smoke: tlsim --trace/--metrics under ASan"
./build-asan/tools/tlsim run --hosts 4 --jobs 4 --workers 3 --iters 2 \
  --placement 1 --policy tls-rr --seed 5 \
  --trace "$smoke_dir/trace.json" --trace-csv "$smoke_dir/trace.csv" \
  --metrics "$smoke_dir/metrics.csv" >/dev/null
for f in trace.json trace.csv metrics.csv; do
  [ -s "$smoke_dir/$f" ] || { echo "missing obs artifact $f"; exit 1; }
done
if command -v python3 >/dev/null 2>&1; then
  python3 - "$smoke_dir/trace.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "trace has no events"
assert all("ph" in e and "pid" in e for e in events), "malformed event"
print(f"trace OK: {len(events)} events")
PYEOF
else
  echo "python3 not installed; skipping trace JSON well-formedness check"
fi

echo "==> [2d/4] tlsreport smoke: attribution report + diff under ASan"
for pol in fifo tls-one; do
  ./build-asan/tools/tlsim run --hosts 3 --jobs 2 --workers 2 --iters 2 \
    --placement 1 --policy "$pol" --seed 5 \
    --trace-csv "$smoke_dir/$pol.csv" \
    --report "$smoke_dir/$pol.txt" --report-json "$smoke_dir/$pol.json" \
    >/dev/null
done
./build-asan/tools/tlsreport "$smoke_dir/fifo.csv" --quiet \
  --json "$smoke_dir/fifo-offline.json"
cmp "$smoke_dir/fifo.json" "$smoke_dir/fifo-offline.json" \
  || { echo "offline tlsreport diverges from in-process report"; exit 1; }
./build-asan/tools/tlsreport --diff "$smoke_dir/fifo.csv" \
  "$smoke_dir/tls-one.csv" --json "$smoke_dir/diff.json" >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$smoke_dir/fifo.json" "$smoke_dir/diff.json" <<'PYEOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "tlsreport-v2", report.get("schema")
assert report["jobs"], "report has no job rollups"
diff = json.load(open(sys.argv[2]))
assert diff["schema"] == "tlsreport-diff-v2", diff.get("schema")
print(f"tlsreport OK: {len(report['jobs'])} jobs, "
      f"{len(diff['jobs'])} diffed")
PYEOF
else
  echo "python3 not installed; skipping report JSON well-formedness check"
fi

echo "==> [2d2/4] streaming + dashboard smoke: --stream/--html/--follow under ASan"
# The streaming engine must be byte-identical to batch on an unsampled trace.
./build-asan/tools/tlsreport "$smoke_dir/fifo.csv" --quiet --stream \
  --json "$smoke_dir/fifo-stream.json"
cmp "$smoke_dir/fifo.json" "$smoke_dir/fifo-stream.json" \
  || { echo "streaming tlsreport diverges from batch"; exit 1; }
# Single-run dashboard, diff dashboard, and a bounded follow over the same
# (static) trace — follow's final report must equal batch too.
./build-asan/tools/tlsreport "$smoke_dir/fifo.csv" --quiet \
  --html "$smoke_dir/fifo.html"
./build-asan/tools/tlsreport --diff "$smoke_dir/fifo.csv" \
  "$smoke_dir/tls-one.csv" --quiet --html "$smoke_dir/diff.html"
./build-asan/tools/tlsreport --follow "$smoke_dir/fifo.csv" --quiet \
  --poll-ms 10 --max-polls 3 --html "$smoke_dir/follow.html" \
  --json "$smoke_dir/fifo-follow.json"
cmp "$smoke_dir/fifo.json" "$smoke_dir/fifo-follow.json" \
  || { echo "follow-mode tlsreport diverges from batch"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$smoke_dir/fifo.html" "$smoke_dir/diff.html" <<'PYEOF'
import json, sys
for path in sys.argv[1:]:
    page = open(path).read()
    assert page.startswith("<!doctype html>"), path
    assert page.rstrip().endswith("</html>"), path
    # Self-contained: nothing fetched from anywhere.
    for banned in ("http://", "https://", "src=", "href="):
        assert banned not in page, f"{path}: external reference {banned!r}"
    # The embedded report JSON must parse and carry the right schema.
    marker = '<script type="application/json" id="tlsreport-a">'
    start = page.index(marker) + len(marker)
    end = page.index("</script>", start)
    doc = json.loads(page[start:end].replace("\\u003c", "<"))
    assert doc["schema"] in ("tlsreport-v2", "tlsreport-diff-v2"), path
print("dashboard OK: self-contained, embedded JSON parses")
PYEOF
else
  echo "python3 not installed; skipping dashboard well-formedness check"
fi

echo "==> [2d3/4] bench_obs_streaming smoke: batch vs streaming engines"
cmake --build --preset debug-asan -j "$jobs" --target bench_obs_streaming
env TLS_BENCH_ITERS=2 TLS_BENCH_JSON_DIR="$smoke_dir" \
  ./build-asan/bench/bench_obs_streaming >/dev/null
[ -s "$smoke_dir/BENCH_obs_streaming.json" ] \
  || { echo "missing BENCH_obs_streaming.json"; exit 1; }

echo "==> [2e/4] scenario smoke: tlsim scenario + trace replay under ASan"
./build-asan/tools/tlsim scenario --hosts 4 --cores 4 \
  --scenario-jobs 6 --scenario-mean-s 2 --scenario-workers-min 2 \
  --scenario-workers-max 3 --scenario-iters-min 3 --scenario-iters-max 5 \
  --scenario-batch 1 --scenario-sample-s 0 --seed 5 \
  --scenario-out "$smoke_dir/scenario.json" \
  --scenario-csv "$smoke_dir/scenario.csv" \
  --scenario-trace-out "$smoke_dir/scenario-trace.csv" >/dev/null
for f in scenario.json scenario.csv scenario-trace.csv; do
  [ -s "$smoke_dir/$f" ] || { echo "missing scenario artifact $f"; exit 1; }
done
# Replaying the emitted trace must reproduce the generated run exactly.
# (trace_seed is metadata: replayed CSVs record 0, generated runs the seed.)
./build-asan/tools/tlsim scenario --hosts 4 --cores 4 \
  --scenario-trace "$smoke_dir/scenario-trace.csv" \
  --scenario-sample-s 0 --seed 5 \
  --scenario-out "$smoke_dir/scenario-replay.json" >/dev/null
cmp <(grep -v '"trace_seed"' "$smoke_dir/scenario.json") \
    <(grep -v '"trace_seed"' "$smoke_dir/scenario-replay.json") \
  || { echo "scenario trace replay diverges from generated run"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$smoke_dir/scenario.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "scenario-v1", doc.get("schema")
counts = doc["counts"]
assert counts["jobs"] == len(doc["jobs_detail"]) == 6, counts
assert counts["completed"] + counts["evicted"] \
    + counts["rejected"] + counts["unfinished"] == 6
print(f"scenario OK: {counts['completed']} completed, "
      f"horizon {doc['horizon_s']:.1f} s")
PYEOF
else
  echo "python3 not installed; skipping scenario JSON well-formedness check"
fi

echo "==> [2f/4] bench_simcore smoke: queue mixes + fabric drain under ASan"
cmake --build --preset debug-asan -j "$jobs" --target bench_simcore
env TLS_BENCH_SIMCORE_OPS=2000 TLS_BENCH_SIMCORE_HOSTS=64 TLS_BENCH_ITERS=2 \
  TLS_BENCH_JSON_DIR="$smoke_dir" ./build-asan/bench/bench_simcore >/dev/null
[ -s "$smoke_dir/BENCH_simcore.json" ] \
  || { echo "missing BENCH_simcore.json"; exit 1; }

echo "==> [2g/4] bench_diff: perf trajectory vs committed BENCH baselines"
# Non-fatal: smoke runs use tiny iteration counts (workload-changed rows)
# and ASan wall clock is noisy; the table is for eyeballs, the exit code
# only warns.
cmake --build --preset debug-asan -j "$jobs" --target bench_diff
./build-asan/tools/bench_diff . "$smoke_dir" --max-regress-pct 15 \
  || echo "bench_diff: regression worse than 15% (non-fatal; see table above)"

echo "==> [3/4] debug-tsan: tls::runtime pool/runner under ThreadSanitizer"
cmake --preset debug-tsan
cmake --build --preset debug-tsan -j "$jobs" --target test_runtime
(cd build-tsan && ctest -R '^(ThreadPool|Runner|ResultCache|Fnv1a64|CanonicalConfig)' \
  --output-on-failure -j "$jobs")

echo "==> [4/4] ci preset: RelWithDebInfo + TLS_WERROR=ON, tier-1 ctest"
cmake --preset ci
cmake --build --preset ci -j "$jobs"
ctest --preset ci -j "$jobs"

echo "==> ci.sh: all green"
