#!/usr/bin/env bash
# CI driver: sanitizer pass first (cheapest way to surface memory/UB bugs
# with full context), then the warnings-clean RelWithDebInfo tier-1 suite
# that gates every PR. Run from anywhere; paths resolve to the repo root.
set -euo pipefail

root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$root"

jobs="$(nproc 2>/dev/null || echo 4)"

echo "==> [1/3] debug-asan: build + ctest (AddressSanitizer, recover=off)"
cmake --preset debug-asan
cmake --build --preset debug-asan -j "$jobs"
ctest --preset debug-asan -j "$jobs"

echo "==> [2/3] determinism lint over src/"
./build-asan/tools/tls_lint src --allowlist tools/tls_lint_allow.txt

if command -v clang-tidy >/dev/null 2>&1; then
  echo "==> [2b/3] clang-tidy (.clang-tidy profile)"
  clang-tidy -p build-asan src/simcore/*.cpp src/net/*.cpp tools/*.cpp
else
  echo "==> [2b/3] clang-tidy not installed; skipping (profile: .clang-tidy)"
fi

echo "==> [3/3] ci preset: RelWithDebInfo + TLS_WERROR=ON, tier-1 ctest"
cmake --preset ci
cmake --build --preset ci -j "$jobs"
ctest --preset ci -j "$jobs"

echo "==> ci.sh: all green"
