// bench_diff — perf-trajectory gate over the committed BENCH_*.json files.
//
// Every bench writes a machine-readable timing file (BENCH_<name>.json,
// see bench/common.hpp) and the repo commits one copy per bench as the
// baseline. This tool compares a directory of freshly emitted files
// against those baselines and prints a trajectory table: one row per
// bench, wall-clock then vs now, and the relative delta. Rows whose
// workload knobs (iters / runs / jobs) differ between the two files are
// reported but never flagged — the wall clocks are not comparable.
//
//   bench_diff <baseline_dir> <fresh_dir> [--max-regress-pct P]
//
// With --max-regress-pct, exits nonzero when any comparable bench got
// slower by more than P percent. CI runs this as a non-fatal stage (wall
// clock on shared runners is noisy); the ctest registration compares the
// repo against itself, pinning the parser and the zero-delta path.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// Extracts the number following `"key":` at any depth; false when absent.
bool extract_number(const std::string& text, const std::string& key,
                    double* out) {
  std::string needle = "\"" + key + "\"";
  std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  at = text.find(':', at + needle.size());
  if (at == std::string::npos) return false;
  const char* start = text.c_str() + at + 1;
  char* end = nullptr;
  double v = std::strtod(start, &end);
  if (end == start) return false;
  *out = v;
  return true;
}

struct BenchFile {
  std::string name;  ///< "attribution" from BENCH_attribution.json
  double wall_s = 0.0;
  double iters = 0.0;
  double runs = 0.0;
  bool ok = false;
};

BenchFile load(const std::filesystem::path& path) {
  BenchFile b;
  std::string stem = path.stem().string();  // BENCH_<name>
  b.name = stem.size() > 6 ? stem.substr(6) : stem;
  std::ifstream in(path);
  if (!in) return b;
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  b.ok = extract_number(text, "wall_s", &b.wall_s);
  extract_number(text, "iters", &b.iters);
  extract_number(text, "runs", &b.runs);
  return b;
}

std::vector<std::filesystem::path> bench_files(const std::string& dir) {
  std::vector<std::filesystem::path> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 &&
        entry.path().extension() == ".json") {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff <baseline_dir> <fresh_dir> "
               "[--max-regress-pct P]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_dir, fresh_dir;
  double max_regress_pct = -1.0;  // <0 = report only, never fail
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--max-regress-pct") {
      if (i + 1 >= argc) return usage();
      max_regress_pct = std::atof(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return usage();
  baseline_dir = positional[0];
  fresh_dir = positional[1];

  std::printf("%-22s %12s %12s %9s  %s\n", "bench", "base wall_s",
              "fresh wall_s", "delta%", "status");
  int compared = 0, regressions = 0, skipped = 0;
  for (const std::filesystem::path& fresh_path : bench_files(fresh_dir)) {
    std::filesystem::path base_path =
        std::filesystem::path(baseline_dir) / fresh_path.filename();
    std::error_code ec;
    if (!std::filesystem::exists(base_path, ec)) {
      std::printf("%-22s %12s %12s %9s  new bench (no baseline)\n",
                  load(fresh_path).name.c_str(), "-", "-", "-");
      continue;
    }
    BenchFile base = load(base_path);
    BenchFile fresh = load(fresh_path);
    if (!base.ok || !fresh.ok) {
      std::printf("%-22s %12s %12s %9s  no comparable wall_s (skipped)\n",
                  fresh.name.c_str(), "-", "-", "-");
      ++skipped;
      continue;
    }
    if (base.iters != fresh.iters || base.runs != fresh.runs) {
      std::printf("%-22s %12.3f %12.3f %9s  workload changed (skipped)\n",
                  fresh.name.c_str(), base.wall_s, fresh.wall_s, "-");
      ++skipped;
      continue;
    }
    double delta_pct = base.wall_s > 0.0
                           ? (fresh.wall_s - base.wall_s) / base.wall_s * 100.0
                           : 0.0;
    bool flagged = max_regress_pct >= 0.0 && delta_pct > max_regress_pct;
    std::printf("%-22s %12.3f %12.3f %+8.1f%%  %s\n", fresh.name.c_str(),
                base.wall_s, fresh.wall_s, delta_pct,
                flagged ? "REGRESSION" : "ok");
    ++compared;
    if (flagged) ++regressions;
  }
  std::printf("\n%d compared, %d skipped, %d regression%s", compared, skipped,
              regressions, regressions == 1 ? "" : "s");
  if (max_regress_pct >= 0.0) {
    std::printf(" worse than %.0f%%", max_regress_pct);
  }
  std::printf("\n");
  return regressions > 0 ? 1 : 0;
}
